// Package poly implements negacyclic polynomial arithmetic over
// Z_q[x]/(x^n + 1) for the word-sized RNS prime moduli, including the
// iterative number-theoretic transform (NTT) the paper's RPAU butterfly
// cores compute (Alg. 1 of the paper), with precomputed twiddle-factor ROMs
// (the paper stores twiddle factors in on-chip memory to eliminate pipeline
// bubbles, Sec. V-A4).
package poly

import (
	"fmt"
	"math/bits"

	"repro/internal/ring"
)

// NTTTable holds precomputed twiddle factors for a negacyclic NTT of length
// n over one prime modulus: powers of ψ (a primitive 2n-th root of unity) in
// bit-reversed order for the forward transform, powers of ψ^-1 for the
// inverse, and n^-1 for the final scaling. This is the software analogue of
// the paper's twiddle-factor ROM.
type NTTTable struct {
	Mod ring.Modulus
	N   int

	Psi    uint64 // primitive 2n-th root of unity
	PsiInv uint64 // ψ^-1 mod q
	NInv   uint64 // n^-1 mod q

	psiRev    []uint64 // ψ^bitrev(i), i = 0..n-1 (forward twiddles)
	psiInvRev []uint64 // ψ^-bitrev(i) (inverse twiddles)

	// Shoup companions of the twiddle ROMs: floor(w·2^64/q) per twiddle w,
	// so each butterfly multiplies by a ROM constant with two machine
	// multiplications and a deferred subtraction (Harvey's lazy butterfly).
	// The hardware stores the same second word next to each twiddle.
	psiRevShoup    []uint64
	psiInvRevShoup []uint64
	nInvShoup      uint64

	// Last inverse level's twiddle with n^-1 folded in (ψ^-bitrev(1)·n^-1),
	// so the final scaling costs no extra pass.
	psiInvN      uint64
	psiInvNShoup uint64
}

// NewNTTTable computes the twiddle ROM for degree n (a power of two ≥ 2)
// over modulus m. The modulus must satisfy q ≡ 1 (mod 2n).
func NewNTTTable(m ring.Modulus, n int) (*NTTTable, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("poly: degree %d is not a power of two ≥ 2", n)
	}
	if (m.Q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("poly: modulus %d does not support a %d-point negacyclic NTT", m.Q, n)
	}
	psi := ring.RootOfUnity(m, uint64(2*n))
	t := &NTTTable{
		Mod:    m,
		N:      n,
		Psi:    psi,
		PsiInv: m.Inv(psi),
		NInv:   m.Inv(uint64(n)),
	}
	t.psiRev = make([]uint64, n)
	t.psiInvRev = make([]uint64, n)
	logN := uint(bits.Len(uint(n)) - 1)
	fwd, inv := uint64(1), uint64(1)
	powsF := make([]uint64, n)
	powsI := make([]uint64, n)
	for i := 0; i < n; i++ {
		powsF[i], powsI[i] = fwd, inv
		fwd = m.Mul(fwd, psi)
		inv = m.Mul(inv, t.PsiInv)
	}
	t.psiRevShoup = make([]uint64, n)
	t.psiInvRevShoup = make([]uint64, n)
	for i := 0; i < n; i++ {
		r := bitReverse(uint(i), logN)
		t.psiRev[i] = powsF[r]
		t.psiInvRev[i] = powsI[r]
		t.psiRevShoup[i] = m.ShoupPrecomp(powsF[r])
		t.psiInvRevShoup[i] = m.ShoupPrecomp(powsI[r])
	}
	t.nInvShoup = m.ShoupPrecomp(t.NInv)
	t.psiInvN = m.Mul(t.psiInvRev[1], t.NInv)
	t.psiInvNShoup = m.ShoupPrecomp(t.psiInvN)
	return t, nil
}

func bitReverse(x uint, nbits uint) uint {
	var r uint
	for i := uint(0); i < nbits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Forward transforms a (length n, coefficients < q) in place into the NTT
// domain, using the Cooley–Tukey decimation-in-time butterfly with the ψ
// powers merged in (so no separate pre-multiplication is needed for the
// negacyclic wrap). Output is in standard order and fully reduced (< q).
//
// The butterflies are lazy: coefficients are allowed to drift up to 4q
// between levels, each butterfly spends a single conditional subtraction of
// 2q on its even leg, and the twiddle product is a Shoup multiplication
// (two bits.Mul64-class multiplies, no division). A final pass reduces the
// result to the canonical range, so the output is bit-identical to the
// former Barrett implementation.
func (t *NTTTable) Forward(a []uint64) {
	if len(a) != t.N {
		panic("poly: NTT length mismatch")
	}
	q := t.Mod.Q
	twoQ := 2 * q
	span := t.N >> 1 // butterfly distance
	for stage := 1; span > 1; stage <<= 1 {
		for group := 0; group < stage; group++ {
			w := t.psiRev[stage+group]
			ws := t.psiRevShoup[stage+group]
			base := 2 * span * group
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span][:span:span]
			for j := range lo {
				// Invariant: lo[j], hi[j] < 4q (< q on entry).
				u := lo[j]
				if u >= twoQ {
					u -= twoQ
				}
				x := hi[j]
				qhat, _ := bits.Mul64(x, ws)
				v := x*w - qhat*q // Shoup lazy product, < 2q
				lo[j] = u + v
				hi[j] = u - v + twoQ
			}
		}
		span >>= 1
	}
	// Last level (span 1) with the canonical reduction folded in.
	stage := t.N >> 1
	for group := 0; group < stage; group++ {
		w := t.psiRev[stage+group]
		ws := t.psiRevShoup[stage+group]
		u := a[2*group]
		if u >= twoQ {
			u -= twoQ
		}
		x := a[2*group+1]
		qhat, _ := bits.Mul64(x, ws)
		v := x*w - qhat*q
		a[2*group] = reduceFrom4Q(u+v, q, twoQ)
		a[2*group+1] = reduceFrom4Q(u-v+twoQ, q, twoQ)
	}
}

// reduceFrom4Q maps a lazy value < 4q to the canonical range [0, q).
func reduceFrom4Q(x, q, twoQ uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

// Inverse transforms a (in NTT domain, standard order) back to coefficient
// representation in place, using the Gentleman–Sande decimation-in-frequency
// butterfly and a final scaling by n^-1. Like Forward it runs lazily — sums
// stay < 2q via one conditional subtraction, the odd leg is a Shoup product
// of the difference — and the n^-1 scaling performs the final reduction, so
// the output is fully reduced and bit-identical to the former Barrett path.
func (t *NTTTable) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("poly: NTT length mismatch")
	}
	q := t.Mod.Q
	twoQ := 2 * q
	// First level (span 1), without the group-slicing overhead. For n = 2 it
	// is also the last level and is handled by the folded-scaling block below.
	if t.N >= 4 {
		for group := 0; group < t.N>>1; group++ {
			w := t.psiInvRev[t.N>>1+group]
			ws := t.psiInvRevShoup[t.N>>1+group]
			u := a[2*group]
			v := a[2*group+1]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			a[2*group] = s
			d := u - v + twoQ
			qhat, _ := bits.Mul64(d, ws)
			a[2*group+1] = d*w - qhat*q
		}
	}
	span := 2
	for stage := t.N >> 2; stage >= 2; stage >>= 1 {
		for group := 0; group < stage; group++ {
			w := t.psiInvRev[stage+group]
			ws := t.psiInvRevShoup[stage+group]
			base := 2 * span * group
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span][:span:span]
			for j := range lo {
				// Invariant: lo[j], hi[j] < 2q (< q on entry).
				u := lo[j]
				v := hi[j]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				lo[j] = s
				d := u - v + twoQ // < 4q
				qhat, _ := bits.Mul64(d, ws)
				hi[j] = d*w - qhat*q // < 2q
			}
		}
		span <<= 1
	}
	// Last level (stage 1): the even leg is scaled by n^-1, the odd leg by
	// the folded twiddle ψ^-bitrev(1)·n^-1; both legs land fully reduced.
	half := t.N >> 1
	nInv, nInvS := t.NInv, t.nInvShoup
	wN, wNS := t.psiInvN, t.psiInvNShoup
	lo := a[:half:half]
	hi := a[half:][:half:half]
	for j := range lo {
		u := lo[j]
		v := hi[j]
		s := u + v // < 4q: fine for a Shoup product
		qhat, _ := bits.Mul64(s, nInvS)
		r := s*nInv - qhat*q
		if r >= q {
			r -= q
		}
		lo[j] = r
		d := u - v + twoQ
		qhat, _ = bits.Mul64(d, wNS)
		r = d*wN - qhat*q
		if r >= q {
			r -= q
		}
		hi[j] = r
	}
}

// ForwardTwiddle returns forward twiddle ψ^bitrev(i); the hardware simulator
// reads the ROM through this accessor.
func (t *NTTTable) ForwardTwiddle(i int) uint64 { return t.psiRev[i] }

// InverseTwiddle returns inverse twiddle ψ^-bitrev(i).
func (t *NTTTable) InverseTwiddle(i int) uint64 { return t.psiInvRev[i] }
