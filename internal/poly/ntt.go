// Package poly implements negacyclic polynomial arithmetic over
// Z_q[x]/(x^n + 1) for the word-sized RNS prime moduli, including the
// iterative number-theoretic transform (NTT) the paper's RPAU butterfly
// cores compute (Alg. 1 of the paper), with precomputed twiddle-factor ROMs
// (the paper stores twiddle factors in on-chip memory to eliminate pipeline
// bubbles, Sec. V-A4).
package poly

import (
	"fmt"
	"math/bits"

	"repro/internal/ring"
)

// NTTTable holds precomputed twiddle factors for a negacyclic NTT of length
// n over one prime modulus: powers of ψ (a primitive 2n-th root of unity) in
// bit-reversed order for the forward transform, powers of ψ^-1 for the
// inverse, and n^-1 for the final scaling. This is the software analogue of
// the paper's twiddle-factor ROM.
type NTTTable struct {
	Mod ring.Modulus
	N   int

	Psi    uint64 // primitive 2n-th root of unity
	PsiInv uint64 // ψ^-1 mod q
	NInv   uint64 // n^-1 mod q

	psiRev    []uint64 // ψ^bitrev(i), i = 0..n-1 (forward twiddles)
	psiInvRev []uint64 // ψ^-bitrev(i) (inverse twiddles)

	// Shoup companions of the twiddle ROMs: floor(w·2^64/q) per twiddle w,
	// so each butterfly multiplies by a ROM constant with two machine
	// multiplications and a deferred subtraction (Harvey's lazy butterfly).
	// The hardware stores the same second word next to each twiddle.
	psiRevShoup    []uint64
	psiInvRevShoup []uint64
	nInvShoup      uint64

	// Last inverse level's twiddle with n^-1 folded in (ψ^-bitrev(1)·n^-1),
	// so the final scaling costs no extra pass.
	psiInvN      uint64
	psiInvNShoup uint64
}

// NewNTTTable computes the twiddle ROM for degree n (a power of two ≥ 2)
// over modulus m. The modulus must satisfy q ≡ 1 (mod 2n).
func NewNTTTable(m ring.Modulus, n int) (*NTTTable, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("poly: degree %d is not a power of two ≥ 2", n)
	}
	if (m.Q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("poly: modulus %d does not support a %d-point negacyclic NTT", m.Q, n)
	}
	psi := ring.RootOfUnity(m, uint64(2*n))
	t := &NTTTable{
		Mod:    m,
		N:      n,
		Psi:    psi,
		PsiInv: m.Inv(psi),
		NInv:   m.Inv(uint64(n)),
	}
	t.psiRev = make([]uint64, n)
	t.psiInvRev = make([]uint64, n)
	logN := uint(bits.Len(uint(n)) - 1)
	fwd, inv := uint64(1), uint64(1)
	powsF := make([]uint64, n)
	powsI := make([]uint64, n)
	for i := 0; i < n; i++ {
		powsF[i], powsI[i] = fwd, inv
		fwd = m.Mul(fwd, psi)
		inv = m.Mul(inv, t.PsiInv)
	}
	t.psiRevShoup = make([]uint64, n)
	t.psiInvRevShoup = make([]uint64, n)
	for i := 0; i < n; i++ {
		r := bitReverse(uint(i), logN)
		t.psiRev[i] = powsF[r]
		t.psiInvRev[i] = powsI[r]
		t.psiRevShoup[i] = m.ShoupPrecomp(powsF[r])
		t.psiInvRevShoup[i] = m.ShoupPrecomp(powsI[r])
	}
	t.nInvShoup = m.ShoupPrecomp(t.NInv)
	t.psiInvN = m.Mul(t.psiInvRev[1], t.NInv)
	t.psiInvNShoup = m.ShoupPrecomp(t.psiInvN)
	return t, nil
}

func bitReverse(x uint, nbits uint) uint {
	var r uint
	for i := uint(0); i < nbits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Forward transforms a (length n, coefficients < q) in place into the NTT
// domain, using the Cooley–Tukey decimation-in-time butterfly with the ψ
// powers merged in (so no separate pre-multiplication is needed for the
// negacyclic wrap). Output is in standard order and fully reduced (< q).
//
// The butterflies are lazy: coefficients are allowed to drift up to 4q
// between levels, each butterfly spends a single conditional subtraction of
// 2q on its even leg, and the twiddle product is a Shoup multiplication
// (two bits.Mul64-class multiplies, no division). A final pass reduces the
// result to the canonical range, so the output is bit-identical to the
// former Barrett implementation.
func (t *NTTTable) Forward(a []uint64) {
	if len(a) != t.N {
		panic("poly: NTT length mismatch")
	}
	t.forwardStages(a, 1, t.N>>1)
}

// ForwardFromInto transforms src (coefficients < q) into dst in one fused
// walk: the first butterfly level reads src and writes dst, and the remaining
// levels run in place in dst. This replaces the copy-then-transform pattern
// of the lift path — the identity half of the base extension is exactly a row
// copy followed by an NTT — with a single pass, and is bit-identical to
// copy + Forward (the first level's 2q guard never fires on reduced input).
// dst and src must not overlap unless identical.
func (t *NTTTable) ForwardFromInto(dst, src []uint64) {
	if len(dst) != t.N || len(src) != t.N {
		panic("poly: NTT length mismatch")
	}
	n := t.N
	if n == 2 {
		copy(dst, src)
		t.forwardStages(dst, 1, 1)
		return
	}
	q := t.Mod.Q
	twoQ := 2 * q
	span := n >> 1
	w := t.psiRev[1]
	ws := t.psiRevShoup[1]
	slo := src[:span:span]
	shi := src[span:][:span:span]
	dlo := dst[:span:span]
	dhi := dst[span:][:span:span]
	for j := range slo {
		u := slo[j]
		x := shi[j]
		qhat, _ := bits.Mul64(x, ws)
		v := x*w - qhat*q
		dlo[j] = u + v
		dhi[j] = u - v + twoQ
	}
	t.forwardStages(dst, 2, span>>1)
}

// forwardStages runs the Cooley–Tukey levels from the given (stage, span)
// down through the folded canonical-reduction last level. The two tail levels
// (span 2 and span 1) run as flat sweeps over the whole array — at those
// spans the general path's per-group sub-slicing costs more than the
// butterflies themselves.
func (t *NTTTable) forwardStages(a []uint64, startStage, startSpan int) {
	a = a[:t.N:t.N]
	q := t.Mod.Q
	twoQ := 2 * q
	span := startSpan // butterfly distance
	for stage := startStage; span > 2; stage <<= 1 {
		for group := 0; group < stage; group++ {
			w := t.psiRev[stage+group]
			ws := t.psiRevShoup[stage+group]
			base := 2 * span * group
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span][:span:span]
			// Two butterflies per iteration; span ≥ 4 is even, so no tail.
			for j := 0; j+1 < len(lo); j += 2 {
				// Invariant: lo[j], hi[j] < 4q (< q on entry).
				u0 := lo[j]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				x0 := hi[j]
				qhat0, _ := bits.Mul64(x0, ws)
				v0 := x0*w - qhat0*q // Shoup lazy product, < 2q
				u1 := lo[j+1]
				if u1 >= twoQ {
					u1 -= twoQ
				}
				x1 := hi[j+1]
				qhat1, _ := bits.Mul64(x1, ws)
				v1 := x1*w - qhat1*q
				lo[j] = u0 + v0
				hi[j] = u0 - v0 + twoQ
				lo[j+1] = u1 + v1
				hi[j+1] = u1 - v1 + twoQ
			}
		}
		span >>= 1
	}
	if span == 2 {
		// Fused radix-4 tail: the last two levels (spans 2 and 1) in one
		// sweep, keeping each group's four lanes in registers between the
		// levels and folding the canonical reduction into the stores. Per
		// lane the operation sequence is exactly the unfused levels'.
		stage := t.N >> 2
		tw2 := t.psiRev[stage : 2*stage : 2*stage]
		tw2S := t.psiRevShoup[stage : 2*stage : 2*stage]
		tw1 := t.psiRev[2*stage : 4*stage : 4*stage]
		tw1S := t.psiRevShoup[2*stage : 4*stage : 4*stage]
		for group := 0; group < stage; group++ {
			w := tw2[group]
			ws := tw2S[group]
			base := 4 * group
			u0 := a[base]
			if u0 >= twoQ {
				u0 -= twoQ
			}
			x0 := a[base+2]
			qhat0, _ := bits.Mul64(x0, ws)
			v0 := x0*w - qhat0*q
			u1 := a[base+1]
			if u1 >= twoQ {
				u1 -= twoQ
			}
			x1 := a[base+3]
			qhat1, _ := bits.Mul64(x1, ws)
			v1 := x1*w - qhat1*q
			b0 := u0 + v0
			b2 := u0 - v0 + twoQ
			b1 := u1 + v1
			b3 := u1 - v1 + twoQ
			// Span-1 butterflies on (b0,b1) and (b2,b3).
			wA := tw1[2*group]
			wAS := tw1S[2*group]
			if b0 >= twoQ {
				b0 -= twoQ
			}
			qhatA, _ := bits.Mul64(b1, wAS)
			vA := b1*wA - qhatA*q
			wB := tw1[2*group+1]
			wBS := tw1S[2*group+1]
			if b2 >= twoQ {
				b2 -= twoQ
			}
			qhatB, _ := bits.Mul64(b3, wBS)
			vB := b3*wB - qhatB*q
			a[base] = reduceFrom4Q(b0+vA, q, twoQ)
			a[base+1] = reduceFrom4Q(b0-vA+twoQ, q, twoQ)
			a[base+2] = reduceFrom4Q(b2+vB, q, twoQ)
			a[base+3] = reduceFrom4Q(b2-vB+twoQ, q, twoQ)
		}
		return
	}
	// Last level (span 1) with the canonical reduction folded in — reached
	// directly only when the caller enters at span 1 (n = 2, or the fused
	// first level of ForwardFromInto at n = 4).
	stage := t.N >> 1
	tw := t.psiRev[stage : 2*stage : 2*stage]
	twS := t.psiRevShoup[stage : 2*stage : 2*stage]
	for group := 0; group < stage; group++ {
		w := tw[group]
		ws := twS[group]
		u := a[2*group]
		if u >= twoQ {
			u -= twoQ
		}
		x := a[2*group+1]
		qhat, _ := bits.Mul64(x, ws)
		v := x*w - qhat*q
		a[2*group] = reduceFrom4Q(u+v, q, twoQ)
		a[2*group+1] = reduceFrom4Q(u-v+twoQ, q, twoQ)
	}
}

// reduceFrom4Q maps a lazy value < 4q to the canonical range [0, q).
func reduceFrom4Q(x, q, twoQ uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

// Inverse transforms a (in NTT domain, standard order) back to coefficient
// representation in place, using the Gentleman–Sande decimation-in-frequency
// butterfly and a final scaling by n^-1. Like Forward it runs lazily — sums
// stay < 2q via one conditional subtraction, the odd leg is a Shoup product
// of the difference — and the n^-1 scaling performs the final reduction, so
// the output is fully reduced and bit-identical to the former Barrett path.
func (t *NTTTable) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("poly: NTT length mismatch")
	}
	a = a[:t.N:t.N]
	q := t.Mod.Q
	twoQ := 2 * q
	// Fused radix-4 head: the first two levels (spans 1 and 2) in one sweep,
	// mirroring forwardStages' fused tail — each group's four lanes stay in
	// registers between the levels. Per lane the operation sequence is
	// exactly the unfused levels'. For n = 4 only the span-1 half applies and
	// runs unfused; for n = 2 the folded-scaling block below is the whole
	// transform.
	if t.N == 4 {
		tw := t.psiInvRev[2:4:4]
		twS := t.psiInvRevShoup[2:4:4]
		for group := 0; group < 2; group++ {
			w := tw[group]
			ws := twS[group]
			u := a[2*group]
			v := a[2*group+1]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			a[2*group] = s
			d := u - v + twoQ
			qhat, _ := bits.Mul64(d, ws)
			a[2*group+1] = d*w - qhat*q
		}
	}
	if t.N >= 8 {
		stage := t.N >> 2
		tw2 := t.psiInvRev[stage : 2*stage : 2*stage]
		tw2S := t.psiInvRevShoup[stage : 2*stage : 2*stage]
		tw1 := t.psiInvRev[2*stage : 4*stage : 4*stage]
		tw1S := t.psiInvRevShoup[2*stage : 4*stage : 4*stage]
		for group := 0; group < stage; group++ {
			base := 4 * group
			// Span-1 butterflies on (a0,a1) and (a2,a3).
			wA := tw1[2*group]
			wAS := tw1S[2*group]
			u0 := a[base]
			v0 := a[base+1]
			b0 := u0 + v0
			if b0 >= twoQ {
				b0 -= twoQ
			}
			dA := u0 - v0 + twoQ
			qhatA, _ := bits.Mul64(dA, wAS)
			b1 := dA*wA - qhatA*q
			wB := tw1[2*group+1]
			wBS := tw1S[2*group+1]
			u1 := a[base+2]
			v1 := a[base+3]
			b2 := u1 + v1
			if b2 >= twoQ {
				b2 -= twoQ
			}
			dB := u1 - v1 + twoQ
			qhatB, _ := bits.Mul64(dB, wBS)
			b3 := dB*wB - qhatB*q
			// Span-2 butterflies on (b0,b2) and (b1,b3).
			w := tw2[group]
			ws := tw2S[group]
			s0 := b0 + b2
			if s0 >= twoQ {
				s0 -= twoQ
			}
			d0 := b0 - b2 + twoQ
			qhat0, _ := bits.Mul64(d0, ws)
			s1 := b1 + b3
			if s1 >= twoQ {
				s1 -= twoQ
			}
			d1 := b1 - b3 + twoQ
			qhat1, _ := bits.Mul64(d1, ws)
			a[base] = s0
			a[base+2] = d0*w - qhat0*q
			a[base+1] = s1
			a[base+3] = d1*w - qhat1*q
		}
	}
	span := 4
	for stage := t.N >> 3; stage >= 2; stage >>= 1 {
		for group := 0; group < stage; group++ {
			w := t.psiInvRev[stage+group]
			ws := t.psiInvRevShoup[stage+group]
			base := 2 * span * group
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span][:span:span]
			// Two butterflies per iteration; span ≥ 4 is even, so no tail.
			for j := 0; j+1 < len(lo); j += 2 {
				// Invariant: lo[j], hi[j] < 2q (< q on entry).
				u0 := lo[j]
				v0 := hi[j]
				s0 := u0 + v0
				if s0 >= twoQ {
					s0 -= twoQ
				}
				d0 := u0 - v0 + twoQ // < 4q
				qhat0, _ := bits.Mul64(d0, ws)
				u1 := lo[j+1]
				v1 := hi[j+1]
				s1 := u1 + v1
				if s1 >= twoQ {
					s1 -= twoQ
				}
				d1 := u1 - v1 + twoQ
				qhat1, _ := bits.Mul64(d1, ws)
				lo[j] = s0
				hi[j] = d0*w - qhat0*q // < 2q
				lo[j+1] = s1
				hi[j+1] = d1*w - qhat1*q
			}
		}
		span <<= 1
	}
	// Last level (stage 1): the even leg is scaled by n^-1, the odd leg by
	// the folded twiddle ψ^-bitrev(1)·n^-1; both legs land fully reduced.
	half := t.N >> 1
	nInv, nInvS := t.NInv, t.nInvShoup
	wN, wNS := t.psiInvN, t.psiInvNShoup
	lo := a[:half:half]
	hi := a[half:][:half:half]
	for j := range lo {
		u := lo[j]
		v := hi[j]
		s := u + v // < 4q: fine for a Shoup product
		qhat, _ := bits.Mul64(s, nInvS)
		r := s*nInv - qhat*q
		if r >= q {
			r -= q
		}
		lo[j] = r
		d := u - v + twoQ
		qhat, _ = bits.Mul64(d, wNS)
		r = d*wN - qhat*q
		if r >= q {
			r -= q
		}
		hi[j] = r
	}
}

// ForwardTwiddle returns forward twiddle ψ^bitrev(i); the hardware simulator
// reads the ROM through this accessor.
func (t *NTTTable) ForwardTwiddle(i int) uint64 { return t.psiRev[i] }

// InverseTwiddle returns inverse twiddle ψ^-bitrev(i).
func (t *NTTTable) InverseTwiddle(i int) uint64 { return t.psiInvRev[i] }
