package cloud

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/ckks"
	"repro/internal/engine"
	"repro/internal/fv"
	"repro/internal/sampler"
)

type ckksTestSystem struct {
	*testSystem
	cp   *ckks.Params
	csk  *ckks.SecretKey
	cpk  *ckks.PublicKey
	cenc *ckks.Encoder
}

// newCKKSTestSystem builds a dual-scheme system: the BFV substrate from
// newTestSystem plus CKKS params, keys, and engine wiring under the default
// tenant (relin key and a rotation-by-1 Galois key).
func newCKKSTestSystem(t testing.TB) *ckksTestSystem {
	t.Helper()
	cp, err := ckks.NewParams(ckks.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewPRNG(99)
	kg := fv.NewKeyGenerator(params, prng)
	sk, pk, rk := kg.GenKeys()
	eng, err := engine.New(engine.Config{Params: params, CKKSParams: cp, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	eng.SetRelinKey(DefaultTenant, rk)

	cprng := sampler.NewPRNG(41)
	ckg := ckks.NewKeyGenerator(cp, cprng)
	csk, cpk, crk := ckg.GenKeys()
	eng.SetCKKSRelinKey(DefaultTenant, crk)
	eng.SetCKKSGaloisKey(DefaultTenant, ckg.GenGaloisKey(csk, cp.GaloisElementForRotation(1)))
	return &ckksTestSystem{
		testSystem: &testSystem{params: params, sk: sk, pk: pk, rk: rk, eng: eng},
		cp:         cp,
		csk:        csk,
		cpk:        cpk,
		cenc:       ckks.NewEncoder(cp),
	}
}

func (ts *ckksTestSystem) encryptVals(t testing.TB, vals []float64) *ckks.Ciphertext {
	t.Helper()
	pt, err := ts.cenc.Encode(vals, ts.cp.MaxLevel(), ts.cp.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	return ckks.NewEncryptor(ts.cp, ts.cpk, sampler.NewPRNG(7)).Encrypt(pt)
}

func (ts *ckksTestSystem) decode(ct *ckks.Ciphertext) []float64 {
	return ts.cenc.Decode(ckks.NewDecryptor(ts.cp, ts.csk).Decrypt(ct))
}

func startCKKSServer(t *testing.T, ts *ckksTestSystem) (*Server, string) {
	t.Helper()
	srv := NewServer(ts.params, ts.eng, nil)
	srv.CKKSParams = ts.cp
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("server exited with %v", err)
		}
	})
	return srv, addr
}

func TestCKKSRequestResponseRoundTrip(t *testing.T) {
	ts := newCKKSTestSystem(t)
	n := ts.cp.Slots()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%9)/10.0 - 0.4
	}
	a := ts.encryptVals(t, vals)
	b := ts.encryptVals(t, vals)

	var buf bytes.Buffer
	req := &Request{Ver: ProtoV2, ID: 3, Cmd: CmdCKKSRotate, CA: a, R: 1}
	if err := WriteRequest(&buf, ts.params, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestCKKS(&buf, ts.params, ts.cp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != CmdCKKSRotate || got.R != 1 || got.CA == nil || got.CA.Level() != a.Level() {
		t.Fatalf("rotate request round trip: %+v", got)
	}

	buf.Reset()
	req = &Request{Ver: ProtoV2, ID: 4, Cmd: CmdCKKSMul, CA: a, CB: b}
	if err := WriteRequest(&buf, ts.params, req); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRequestCKKS(&buf, ts.params, ts.cp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != CmdCKKSMul || got.CA == nil || got.CB == nil {
		t.Fatalf("mul request round trip: %+v", got)
	}
	if got.CA.Scale != a.Scale {
		t.Fatalf("scale drifted through the wire: %g != %g", got.CA.Scale, a.Scale)
	}

	// A server without CKKS params must refuse the command as malformed
	// rather than misframe the stream.
	buf.Reset()
	if err := WriteRequest(&buf, ts.params, &Request{Ver: ProtoV2, ID: 5, Cmd: CmdCKKSAdd, CA: a, CB: b}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequestCKKS(&buf, ts.params, nil); err == nil {
		t.Fatal("ckks request accepted by a server without CKKS params")
	}

	// Response round trip carries the CKKS result.
	buf.Reset()
	if err := WriteResponse(&buf, ts.params, &Response{Ver: ProtoV2, ID: 4, CKKSResult: a, ComputeNanos: 777}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadCKKSResponseV(&buf, ts.cp, ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CKKSResult == nil || resp.ComputeNanos != 777 {
		t.Fatalf("ckks response round trip: %+v", resp)
	}
	diff := 0.0
	gotVals, wantVals := ts.decode(resp.CKKSResult), ts.decode(a)
	for i := range gotVals {
		diff = math.Max(diff, math.Abs(gotVals[i]-wantVals[i]))
	}
	if diff != 0 {
		t.Fatalf("ckks result changed through response framing: max diff %g", diff)
	}
}

func TestCKKSServing(t *testing.T) {
	ts := newCKKSTestSystem(t)
	_, addr := startCKKSServer(t, ts)

	cl, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	info, err := cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.CKKS {
		t.Fatal("server does not advertise CKKS")
	}

	// Before EnableCKKS the client refuses locally, leaving the stream usable.
	ctProbe := ckks.NewCiphertext(ts.cp, 2, ts.cp.MaxLevel())
	if _, _, err := cl.CKKSAdd(ctProbe, ctProbe); err == nil {
		t.Fatal("ckks command succeeded without EnableCKKS")
	}
	if cl.Broken() {
		t.Fatal("local refusal broke the connection")
	}
	cl.EnableCKKS(ts.cp)

	n := ts.cp.Slots()
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%7)/10.0 - 0.3
		ws[i] = float64(i%5)/10.0 - 0.2
	}
	ctX := ts.encryptVals(t, xs)
	ctW := ts.encryptVals(t, ws)

	check := func(name string, ct *ckks.Ciphertext, want func(i int) float64, tol float64) {
		t.Helper()
		got := ts.decode(ct)
		for i := 0; i < n; i++ {
			if d := math.Abs(got[i] - want(i)); d > tol {
				t.Fatalf("%s slot %d: got %g want %g (err %g)", name, i, got[i], want(i), d)
			}
		}
	}

	sum, _, err := cl.CKKSAdd(ctX, ctW)
	if err != nil {
		t.Fatal(err)
	}
	check("add", sum, func(i int) float64 { return xs[i] + ws[i] }, 1e-4)

	prod, dur, err := cl.CKKSMul(ctX, ctW)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("mul reported no compute time")
	}
	if prod.Level() != ctX.Level()-1 {
		t.Fatalf("mul result level %d, want %d", prod.Level(), ctX.Level()-1)
	}
	check("mul", prod, func(i int) float64 { return xs[i] * ws[i] }, 1e-3)

	// Mismatched levels align server-side; client never tracks the chain.
	deeper, _, err := cl.CKKSMul(ctX, prod)
	if err != nil {
		t.Fatal(err)
	}
	check("mul-mixed", deeper, func(i int) float64 { return xs[i] * xs[i] * ws[i] }, 1e-3)

	rot, _, err := cl.CKKSRotate(ctX, 1)
	if err != nil {
		t.Fatal(err)
	}
	check("rotate", rot, func(i int) float64 { return xs[(i+1)%n] }, 1e-4)

	// BFV traffic keeps working on the same connection after CKKS exchanges.
	fa := ts.encrypt(t, 5)
	fb := ts.encrypt(t, 6)
	fsum, _, err := cl.Add(fa, fb)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.decrypt(fsum); got != 11 {
		t.Fatalf("bfv add after ckks traffic: got %d, want 11", got)
	}
}

func TestCKKSServerWithoutParams(t *testing.T) {
	ts := newCKKSTestSystem(t)
	// Plain BFV server: no CKKSParams. CKKS frames must be rejected as
	// protocol errors without killing the listener.
	_, addr := startServer(t, ts.testSystem)

	cl, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.EnableCKKS(ts.cp)

	vals := make([]float64, ts.cp.Slots())
	ct := ts.encryptVals(t, vals)
	if _, _, err := cl.CKKSAdd(ct, ct); err == nil {
		t.Fatal("ckks command succeeded against a BFV-only server")
	}
}
