package cloud

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/fv"
	"repro/internal/program"
	"repro/internal/sampler"
)

// fuzzParams builds the shared parameter set once per process: parameter
// generation is too slow to repeat per fuzz iteration, and the decoders are
// pure functions of (bytes, params).
var fuzzParams = sync.OnceValue(func() *fv.Params {
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		panic(err)
	}
	return params
})

// fuzzCiphertext builds one well-formed ciphertext for seed frames.
var fuzzCiphertext = sync.OnceValue(func() *fv.Ciphertext {
	params := fuzzParams()
	prng := sampler.NewPRNG(41)
	kg := fv.NewKeyGenerator(params, prng)
	_, pk, _ := kg.GenKeys()
	pt := fv.NewPlaintext(params)
	pt.Coeffs[0] = 7
	return fv.NewEncryptor(params, pk, prng).Encrypt(pt)
})

// fuzzProgram builds one well-formed serialized program for seed frames.
var fuzzProgram = sync.OnceValue(func() []byte {
	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	b.Output(b.Add(b.Mul(x, y), x))
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	data, err := p.EncodeBytes()
	if err != nil {
		panic(err)
	}
	return data
})

// checkDecodeErr fails the fuzz run when a decoder rejects input with an
// untyped error: every structural rejection must wrap the sentinel so the
// server/client can tell garbage from transport loss. Pure I/O errors (EOF
// before the frame started) are exempt.
func checkDecodeErr(t *testing.T, err, sentinel error) {
	t.Helper()
	if err == nil || errors.Is(err, sentinel) {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	t.Fatalf("decode error is not typed: %v", err)
}

// FuzzDecodeRequest feeds arbitrary bytes to ReadRequest. The decoder must
// never panic, never read more than MaxRequestBytes, reject garbage with a
// typed error, and anything it accepts must survive a re-encode/re-decode
// round trip.
func FuzzDecodeRequest(f *testing.F) {
	params := fuzzParams()
	ct := fuzzCiphertext()
	seeds := []*Request{
		{Cmd: CmdPing, Ver: ProtoV1},
		{Cmd: CmdPing, Ver: ProtoV2, ID: 7, Tenant: "alice"},
		{Cmd: CmdInfo, Ver: ProtoV2, ID: 8},
		{Cmd: CmdAdd, Ver: ProtoV1, A: ct, B: ct},
		{Cmd: CmdAdd, Ver: ProtoV2, ID: 9, Tenant: "bob", A: ct, B: ct},
		{Cmd: CmdMul, Ver: ProtoV2, ID: 10, A: ct, B: ct},
		{Cmd: CmdRotate, Ver: ProtoV2, ID: 11, G: 3, A: ct},
		{Cmd: CmdProgram, Ver: ProtoV2, ID: 12, Tenant: "carol",
			ProgBytes: fuzzProgram(), Inputs: []*fv.Ciphertext{ct, ct}},
	}
	for _, req := range seeds {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, params, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Truncations and single-byte corruptions of valid frames reach the
		// deep decode paths far faster than random bytes.
		f.Add(buf.Bytes()[:buf.Len()/2])
		flipped := bytes.Clone(buf.Bytes())
		flipped[buf.Len()/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("HEAT"))
	f.Add([]byte("HEA2\x02\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data), params)
		if err != nil {
			checkDecodeErr(t, err, ErrMalformedRequest)
			return
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, params, req); err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		if _, err := ReadRequest(&buf, params); err != nil {
			t.Fatalf("re-encoded request does not re-decode: %v", err)
		}
	})
}

// FuzzDecodeMuxFrame feeds arbitrary bytes to the mux frame decoder. It must
// never panic, never allocate past the payload bound, classify every
// rejection as connection-fatal (ErrMalformedMuxFrame) or per-request
// (ErrMuxPayloadChecksum, which must carry the frame's ID), and anything it
// accepts must survive a re-encode/re-decode round trip.
func FuzzDecodeMuxFrame(f *testing.F) {
	const maxPayload = 1 << 16
	seed := func(typ uint8, id uint64, payload []byte) {
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, typ, id, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
		// One flip in the header (fatal) and one in the payload (per-request).
		flipped := bytes.Clone(buf.Bytes())
		flipped[muxHeaderLen/2] ^= 0x40
		f.Add(flipped)
		flipped = bytes.Clone(buf.Bytes())
		flipped[muxHeaderLen+len(payload)/2] ^= 0x40
		f.Add(flipped)
	}
	seed(MuxFrameRequest, 1, []byte("x"))
	seed(MuxFrameResponse, 1<<40, bytes.Repeat([]byte{0xA5}, 257))
	var hello bytes.Buffer
	if err := WriteMuxHello(&hello, DefaultMuxWindow); err != nil {
		f.Fatal(err)
	}
	f.Add(hello.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeMuxFrame(bytes.NewReader(data), maxPayload)
		if errors.Is(err, ErrMuxPayloadChecksum) {
			if frame == nil {
				t.Fatal("payload checksum error lost its frame")
			}
			return
		}
		if err != nil {
			checkDecodeErr(t, err, ErrMalformedMuxFrame)
			return
		}
		var buf bytes.Buffer
		if err := WriteMuxFrame(&buf, frame.Type, frame.ID, frame.Payload); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		got, err := DecodeMuxFrame(&buf, maxPayload)
		if err != nil {
			t.Fatalf("re-encoded frame does not re-decode: %v", err)
		}
		if got.Type != frame.Type || got.ID != frame.ID || !bytes.Equal(got.Payload, frame.Payload) {
			t.Fatal("mux frame round trip drifted")
		}
	})
}

// FuzzDecodeResponse feeds arbitrary bytes to ReadResponseV in both protocol
// versions. Same contract as the request side; additionally, an unknown
// status byte must never be parsed as a success frame.
func FuzzDecodeResponse(f *testing.F) {
	params := fuzzParams()
	ct := fuzzCiphertext()
	seeds := []*Response{
		{Ver: ProtoV1, Result: ct, ComputeNanos: 123, Worker: 1},
		{Ver: ProtoV2, ID: 5, Result: ct, ComputeNanos: 456, Worker: 0},
		{Ver: ProtoV1, Err: "no such key"},
		{Ver: ProtoV2, ID: 6, Err: "overloaded", Code: CodeUnavailable},
		{Ver: ProtoV2, ID: 7, Err: "fingerprint mismatch", Code: CodeIntegrity},
	}
	for _, resp := range seeds {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, params, resp); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), resp.Ver)
		f.Add(buf.Bytes()[:buf.Len()/2], resp.Ver)
		flipped := bytes.Clone(buf.Bytes())
		flipped[buf.Len()/3] ^= 0x40
		f.Add(flipped, resp.Ver)
	}
	f.Add([]byte{0xFF}, ProtoV2)
	f.Add([]byte{}, ProtoV1)

	f.Fuzz(func(t *testing.T, data []byte, ver uint8) {
		if ver != ProtoV1 && ver != ProtoV2 {
			ver = ProtoV2
		}
		resp, err := ReadResponseV(bytes.NewReader(data), params, ver)
		if err != nil {
			checkDecodeErr(t, err, ErrMalformedResponse)
			return
		}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, params, resp); err != nil {
			t.Fatalf("accepted response does not re-encode: %v", err)
		}
		if _, err := ReadResponseV(&buf, params, ver); err != nil {
			t.Fatalf("re-encoded response does not re-decode: %v", err)
		}
	})
}
