package cloud

// Key-state migration and cluster-administration wire support: the tenant
// key blob (CmdKeyExport / CmdKeyImport payloads), the JSON admin control
// messages (CmdAdmin), the shared status+ID+length response framing the
// three commands answer with, and the client methods that speak them.
//
// A key blob is the complete evaluation-key state of one tenant — BFV and
// CKKS, relinearization and Galois — as a bounded sequence of sections,
// each wrapping one key in its checksummed v2 file container. The inner
// containers carry their own parameter headers and checksums, so a blob
// damaged in flight (or emitted by a node on different parameters) is
// detected on import, never silently installed.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ckks"
	"repro/internal/engine"
	"repro/internal/fv"
)

// MaxAdminBytes bounds a CmdAdmin request body and the JSON acknowledgement
// bodies of the migration commands. Control messages are tiny; anything
// bigger is malformed.
const MaxAdminBytes = 4096

// maxKeyBlobSections bounds the section count of a key blob: one relin key
// plus at most 64 Galois keys per scheme (matching the per-key gadget
// bound the key containers enforce).
const maxKeyBlobSections = 130

// Key blob section kinds.
const (
	keySectionFVRelin    uint8 = 1
	keySectionFVGalois   uint8 = 2
	keySectionCKKSRelin  uint8 = 3
	keySectionCKKSGalois uint8 = 4
)

var keyBlobMagic = [4]byte{'H', 'E', 'K', 'B'}

// ErrKeyBlob wraps every structural decode failure of a tenant key blob.
var ErrKeyBlob = errors.New("cloud: malformed key blob")

// MaxKeyBlobBytes bounds one serialized tenant key set under the node's
// parameter sets — the decode budget CmdKeyImport enforces before
// allocating. Generous by construction (checksummed containers, 64-entry
// gadget rows, 8 bytes per coefficient) so a legitimate full key set always
// fits; its job is stopping a hostile length field, not accounting bytes.
func MaxKeyBlobBytes(params *fv.Params, cparams *ckks.Params) int {
	poly := 64 + params.QBasis.K()*params.N()*8
	perKey := 256 + 2*64*poly
	total := 64 + 65*(perKey+16)
	if cparams != nil {
		cpoly := 64 + (cparams.MaxLevel()+2)*cparams.N()*8
		cperKey := 256 + 2*64*(cparams.MaxLevel()+1)*cpoly
		total += 65 * (cperKey + 16)
	}
	return total
}

// EncodeTenantKeys serializes a tenant key set as a key blob. CKKS keys
// require cparams (the node's CKKS parameter set); an empty set is an
// error — there is nothing to migrate.
func EncodeTenantKeys(params *fv.Params, cparams *ckks.Params, ks *engine.TenantKeySet) ([]byte, error) {
	if ks.Empty() {
		return nil, errors.New("cloud: empty tenant key set")
	}
	if (ks.CKKSRelin != nil || len(ks.CKKSGalois) > 0) && cparams == nil {
		return nil, errors.New("cloud: key set has CKKS keys but no CKKS parameters")
	}
	if ks.Count() > maxKeyBlobSections {
		return nil, fmt.Errorf("cloud: key set of %d keys exceeds %d sections", ks.Count(), maxKeyBlobSections)
	}
	var out bytes.Buffer
	out.Write(keyBlobMagic[:])
	var cnt [2]byte
	binary.LittleEndian.PutUint16(cnt[:], uint16(ks.Count()))
	out.Write(cnt[:])

	section := func(kind uint8, write func(w io.Writer) error) error {
		var body bytes.Buffer
		if err := write(&body); err != nil {
			return err
		}
		out.WriteByte(kind)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(body.Len()))
		out.Write(n[:])
		out.Write(body.Bytes())
		return nil
	}
	if ks.Relin != nil {
		if err := section(keySectionFVRelin, func(w io.Writer) error {
			return fv.WriteRelinKeyV2(w, params, ks.Relin)
		}); err != nil {
			return nil, err
		}
	}
	for _, gk := range ks.Galois {
		gk := gk
		if err := section(keySectionFVGalois, func(w io.Writer) error {
			return fv.WriteGaloisKeyV2(w, params, gk)
		}); err != nil {
			return nil, err
		}
	}
	if ks.CKKSRelin != nil {
		if err := section(keySectionCKKSRelin, func(w io.Writer) error {
			return ckks.WriteRelinKeyV2(w, cparams, ks.CKKSRelin)
		}); err != nil {
			return nil, err
		}
	}
	for _, gk := range ks.CKKSGalois {
		gk := gk
		if err := section(keySectionCKKSGalois, func(w io.Writer) error {
			return ckks.WriteGaloisKeyV2(w, cparams, gk)
		}); err != nil {
			return nil, err
		}
	}
	return out.Bytes(), nil
}

// DecodeTenantKeys parses and validates a key blob against the node's own
// parameter sets: every section decodes through its checksummed container,
// and a key generated under different ring parameters (or a CKKS key on a
// node without CKKS) is refused rather than installed.
func DecodeTenantKeys(data []byte, params *fv.Params, cparams *ckks.Params) (*engine.TenantKeySet, error) {
	if len(data) < 6 || [4]byte(data[:4]) != keyBlobMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrKeyBlob)
	}
	count := int(binary.LittleEndian.Uint16(data[4:6]))
	if count == 0 || count > maxKeyBlobSections {
		return nil, fmt.Errorf("%w: section count %d outside (0, %d]", ErrKeyBlob, count, maxKeyBlobSections)
	}
	ks := &engine.TenantKeySet{}
	off := 6
	for i := 0; i < count; i++ {
		if len(data)-off < 5 {
			return nil, fmt.Errorf("%w: truncated section %d header", ErrKeyBlob, i)
		}
		kind := data[off]
		n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		off += 5
		if n <= 0 || n > len(data)-off {
			return nil, fmt.Errorf("%w: section %d length %d exceeds remaining %d bytes", ErrKeyBlob, i, n, len(data)-off)
		}
		body := bytes.NewReader(data[off : off+n])
		off += n
		switch kind {
		case keySectionFVRelin:
			p, rk, err := fv.ReadRelinKey(body)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
			}
			if err := sameFVParams(p, params); err != nil {
				return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
			}
			ks.Relin = rk
		case keySectionFVGalois:
			p, gk, err := fv.ReadGaloisKey(body)
			if err != nil {
				return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
			}
			if err := sameFVParams(p, params); err != nil {
				return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
			}
			ks.Galois = append(ks.Galois, gk)
		case keySectionCKKSRelin, keySectionCKKSGalois:
			if cparams == nil {
				return nil, fmt.Errorf("%w: section %d carries a CKKS key but this node has no CKKS parameters", ErrKeyBlob, i)
			}
			if kind == keySectionCKKSRelin {
				p, rk, err := ckks.ReadRelinKey(body)
				if err != nil {
					return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
				}
				if err := sameCKKSParams(p, cparams); err != nil {
					return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
				}
				ks.CKKSRelin = rk
			} else {
				p, gk, err := ckks.ReadGaloisKey(body)
				if err != nil {
					return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
				}
				if err := sameCKKSParams(p, cparams); err != nil {
					return nil, fmt.Errorf("%w: section %d: %w", ErrKeyBlob, i, err)
				}
				ks.CKKSGalois = append(ks.CKKSGalois, gk)
			}
		default:
			return nil, fmt.Errorf("%w: section %d has unknown kind %d", ErrKeyBlob, i, kind)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrKeyBlob, len(data)-off)
	}
	return ks, nil
}

// sameFVParams checks the decoded key's ring shape against the node's: a
// key from a differently-parameterized fleet must not be installed.
func sameFVParams(got, want *fv.Params) error {
	if got.N() != want.N() || got.QBasis.K() != want.QBasis.K() {
		return fmt.Errorf("key parameters (n=%d, k=%d) do not match node (n=%d, k=%d)",
			got.N(), got.QBasis.K(), want.N(), want.QBasis.K())
	}
	return nil
}

func sameCKKSParams(got, want *ckks.Params) error {
	if got.N() != want.N() || got.MaxLevel() != want.MaxLevel() {
		return fmt.Errorf("CKKS key parameters (n=%d, L=%d) do not match node (n=%d, L=%d)",
			got.N(), got.MaxLevel(), want.N(), want.MaxLevel())
	}
	return nil
}

// Admin operations carried by CmdAdmin.
const (
	AdminJoin  = "join"
	AdminLeave = "leave"
	AdminDrain = "drain"
)

// AdminRequest is the CmdAdmin body: one membership change for the routing
// tier. Join needs Node and Addr; Leave and Drain need Node.
type AdminRequest struct {
	Op   string `json:"op"`
	Node string `json:"node"`
	Addr string `json:"addr,omitempty"`
}

// AdminReply acknowledges a membership change: the resulting ring members
// and what the key-state migration moved before the cutover.
type AdminReply struct {
	Node            string   `json:"node"`
	Members         []string `json:"members"`
	MigratedTenants int      `json:"migrated_tenants"`
	MigratedKeys    int      `json:"migrated_keys"`
}

// WriteBlobResponse writes the framing the migration and admin commands
// answer with: status, request ID, u32 length, body — the same envelope as
// CmdInfo, reused so one reader serves all JSON/opaque replies.
func WriteBlobResponse(w io.Writer, id uint64, body []byte) error {
	hdr := make([]byte, 0, 1+8+4)
	hdr = append(hdr, statusOK)
	hdr = binary.LittleEndian.AppendUint64(hdr, id)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteBlobError answers a migration/admin command with a typed failure.
func WriteBlobError(w io.Writer, id uint64, code uint8, msg string) error {
	hdr := make([]byte, 0, 1+8+1+4)
	hdr = append(hdr, statusErr)
	hdr = binary.LittleEndian.AppendUint64(hdr, id)
	hdr = append(hdr, code)
	body := []byte(msg)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadBlobResponse reads one migration/admin reply of at most maxLen body
// bytes. A server-reported failure decodes as *ServerError with its code.
func ReadBlobResponse(r io.Reader, maxLen int) (uint64, []byte, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return 0, nil, err
	}
	switch status[0] {
	case statusOK:
		var hdr [12]byte // id, length
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return 0, nil, malformed(ErrMalformedResponse, "truncated blob response header", err)
		}
		id := binary.LittleEndian.Uint64(hdr[:8])
		ln := binary.LittleEndian.Uint32(hdr[8:])
		if int64(ln) > int64(maxLen) {
			return 0, nil, fmt.Errorf("%w: blob response length %d exceeds %d", ErrMalformedResponse, ln, maxLen)
		}
		body := make([]byte, ln)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, nil, malformed(ErrMalformedResponse, "truncated blob response body", err)
		}
		return id, body, nil
	case statusErr:
		var hdr [13]byte // id, code, message length
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return 0, nil, malformed(ErrMalformedResponse, "truncated blob error header", err)
		}
		id := binary.LittleEndian.Uint64(hdr[:8])
		code := hdr[8]
		ln := binary.LittleEndian.Uint32(hdr[9:])
		if ln == 0 || ln > 1<<16 {
			return 0, nil, fmt.Errorf("%w: implausible blob error length %d", ErrMalformedResponse, ln)
		}
		msg := make([]byte, ln)
		if _, err := io.ReadFull(r, msg); err != nil {
			return 0, nil, malformed(ErrMalformedResponse, "truncated blob error message", err)
		}
		return id, nil, &ServerError{Code: code, Msg: string(msg)}
	default:
		return 0, nil, fmt.Errorf("%w: unknown status byte %d", ErrMalformedResponse, status[0])
	}
}

// blobExchange runs one request/blob-response round trip with the client's
// usual deadline, cancellation, and desync handling.
func (c *Client) blobExchange(ctx context.Context, req *Request, maxLen int) ([]byte, error) {
	if c.ver < ProtoV2 {
		return nil, fmt.Errorf("cloud: %s requires protocol v2", cmdName(req.Cmd))
	}
	if c.broken {
		return nil, fmt.Errorf("cloud: client connection is broken")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Ver = c.ver
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	c.nextID++
	req.ID = c.nextID
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	stop := c.watch(ctx)
	defer stop()

	if err := WriteRequest(c.conn, c.params, req); err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	id, body, err := ReadBlobResponse(c.conn, maxLen)
	if err != nil {
		var se *ServerError
		if !errors.As(err, &se) {
			c.broken = true
			return nil, c.ctxErr(ctx, err)
		}
		if id != req.ID {
			c.broken = true
			return nil, fmt.Errorf("cloud: blob response ID %d for request %d (stream desync)", id, req.ID)
		}
		return nil, err
	}
	if id != req.ID {
		c.broken = true
		return nil, fmt.Errorf("cloud: blob response ID %d for request %d (stream desync)", id, req.ID)
	}
	return body, nil
}

// KeyExport asks the node for the tenant's complete evaluation-key state as
// an opaque key blob (decode with DecodeTenantKeys). A tenant with no keys
// on the node is a *ServerError.
func (c *Client) KeyExport(ctx context.Context, tenant string) ([]byte, error) {
	return c.blobExchange(ctx, &Request{Cmd: CmdKeyExport, Tenant: tenant},
		MaxKeyBlobBytes(c.params, c.ckks))
}

// ImportAck is the JSON body acknowledging a CmdKeyImport.
type ImportAck struct {
	Tenant string `json:"tenant"`
	Keys   int    `json:"keys"`
}

// KeyImport installs a key blob (from KeyExport on another node) under the
// tenant on this node, returning how many keys were registered.
func (c *Client) KeyImport(ctx context.Context, tenant string, blob []byte) (*ImportAck, error) {
	body, err := c.blobExchange(ctx, &Request{Cmd: CmdKeyImport, Tenant: tenant, Blob: blob}, MaxAdminBytes)
	if err != nil {
		return nil, err
	}
	var ack ImportAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return nil, fmt.Errorf("cloud: decoding import ack: %w", err)
	}
	return &ack, nil
}

// Admin sends one membership control message to a routing tier. Data nodes
// refuse the command with a *ServerError.
func (c *Client) Admin(ctx context.Context, areq *AdminRequest) (*AdminReply, error) {
	blob, err := json.Marshal(areq)
	if err != nil {
		return nil, err
	}
	body, err := c.blobExchange(ctx, &Request{Cmd: CmdAdmin, Blob: blob}, MaxAdminBytes)
	if err != nil {
		return nil, err
	}
	var reply AdminReply
	if err := json.Unmarshal(body, &reply); err != nil {
		return nil, fmt.Errorf("cloud: decoding admin reply: %w", err)
	}
	return &reply, nil
}
