package cloud

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fv"
	"repro/internal/sampler"
)

type testSystem struct {
	params *fv.Params
	sk     *fv.SecretKey
	pk     *fv.PublicKey
	rk     *fv.RelinKey
	eng    *engine.Engine
}

func newTestSystem(t testing.TB) *testSystem {
	t.Helper()
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewPRNG(99)
	kg := fv.NewKeyGenerator(params, prng)
	sk, pk, rk := kg.GenKeys()
	eng, err := engine.New(engine.Config{Params: params, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	eng.SetRelinKey(DefaultTenant, rk)
	return &testSystem{params: params, sk: sk, pk: pk, rk: rk, eng: eng}
}

func (ts *testSystem) encrypt(t testing.TB, v uint64) *fv.Ciphertext {
	t.Helper()
	prng := sampler.NewPRNG(v * 7)
	enc := fv.NewEncryptor(ts.params, ts.pk, prng)
	pt := fv.NewPlaintext(ts.params)
	pt.Coeffs[0] = v % 257
	return enc.Encrypt(pt)
}

func (ts *testSystem) decrypt(ct *fv.Ciphertext) uint64 {
	return fv.NewDecryptor(ts.params, ts.sk).Decrypt(ct).Coeffs[0]
}

func startServer(t *testing.T, ts *testSystem) (*Server, string) {
	t.Helper()
	srv := NewServer(ts.params, ts.eng, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("server exited with %v", err)
		}
	})
	return srv, addr
}

func TestRequestResponseRoundTrip(t *testing.T) {
	ts := newTestSystem(t)
	a := ts.encrypt(t, 5)
	b := ts.encrypt(t, 6)

	var buf bytes.Buffer
	if err := WriteRequest(&buf, ts.params, &Request{Cmd: CmdMul, A: a, B: b}); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(&buf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if req.Cmd != CmdMul || !req.A.Equal(a) || !req.B.Equal(b) {
		t.Fatal("request round trip failed")
	}

	buf.Reset()
	resp := &Response{Result: a, ComputeNanos: 12345, Worker: 1}
	if err := WriteResponse(&buf, ts.params, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(a) || got.ComputeNanos != 12345 || got.Worker != 1 {
		t.Fatal("response round trip failed")
	}

	// Error responses round trip too.
	buf.Reset()
	if err := WriteResponse(&buf, ts.params, &Response{Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadResponse(&buf, ts.params); err != nil || got.Err != "boom" {
		t.Fatalf("error response round trip: %v %v", got, err)
	}
}

func TestRequestValidation(t *testing.T) {
	ts := newTestSystem(t)
	// Wrong magic.
	if _, err := ReadRequest(bytes.NewReader([]byte("XXXX\x01")), ts.params); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Unknown command.
	if _, err := ReadRequest(bytes.NewReader([]byte("HEAT\x99")), ts.params); err == nil {
		t.Fatal("unknown command accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	buf.WriteString("HEAT")
	buf.WriteByte(CmdAdd)
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadRequest(&buf, ts.params); err == nil {
		t.Fatal("truncated request accepted")
	}
}

func TestServerEndToEnd(t *testing.T) {
	ts := newTestSystem(t)
	srv, addr := startServer(t, ts)

	client, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	a := ts.encrypt(t, 9)
	b := ts.encrypt(t, 13)

	sum, _, err := client.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.decrypt(sum); got != 22 {
		t.Fatalf("9+13 = %d over the wire", got)
	}

	prod, hwTime, err := client.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.decrypt(prod); got != 117 {
		t.Fatalf("9·13 = %d over the wire", got)
	}
	if hwTime <= 0 {
		t.Fatal("server did not report simulated hardware time")
	}
	// Ping is not a homomorphic operation; only Add and Mul count.
	if srv.Served() != 2 {
		t.Fatalf("server served %d ops, want 2", srv.Served())
	}
}

func TestServerConcurrentClients(t *testing.T) {
	ts := newTestSystem(t)
	_, addr := startServer(t, ts)

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, ts.params)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			a := ts.encrypt(t, uint64(i+2))
			b := ts.encrypt(t, uint64(i+3))
			prod, _, err := c.Mul(a, b)
			if err != nil {
				errs[i] = err
				return
			}
			want := uint64((i + 2) * (i + 3) % 257)
			if got := ts.decrypt(prod); got != want {
				errs[i] = errResult{got, want}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

type errResult struct{ got, want uint64 }

func (e errResult) Error() string {
	return "wrong result"
}

func TestServerRotate(t *testing.T) {
	ts := newTestSystem(t)
	srv, addr := startServer(t, ts)

	// Install a Galois key server-side (as a client would upload it).
	prngK := sampler.NewPRNG(99)
	kg := fv.NewKeyGenerator(ts.params, prngK)
	// Re-derive the same secret the test system holds by regenerating with
	// the same seed: GenKeys consumed the stream in the same order.
	sk2, _, _ := kg.GenKeys()
	if !sk2.S.Equal(ts.sk.S) {
		t.Fatal("deterministic key regeneration out of sync")
	}
	const g = 3
	gk := kg.GenGaloisKey(sk2, g)
	srv.SetGaloisKey(gk)

	client, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pt := fv.NewPlaintext(ts.params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(2*i + 1)
	}
	prng := sampler.NewPRNG(7)
	enc := fv.NewEncryptor(ts.params, ts.pk, prng)
	ct := enc.Encrypt(pt)

	rotated, hwTime, err := client.Rotate(ct, g)
	if err != nil {
		t.Fatal(err)
	}
	if hwTime <= 0 {
		t.Fatal("no simulated time reported")
	}
	want := fv.ApplyAutomorphismPlain(ts.params, g, pt)
	got := fv.NewDecryptor(ts.params, ts.sk).Decrypt(rotated)
	if !got.Equal(want) {
		t.Fatal("cloud rotation decrypts wrong")
	}

	// Rotating with an uninstalled element must fail cleanly.
	if _, _, err := client.Rotate(ct, 5); err == nil {
		t.Fatal("rotation with missing key should error")
	}
	// The connection must survive the error response.
	if err := client.Ping(); err != nil {
		t.Fatalf("connection broken after error response: %v", err)
	}
}

// TestServerGracefulShutdown: Shutdown must return within its context even
// while a client connection is still open and idle — the old server waited
// for clients to hang up on their own.
func TestServerGracefulShutdown(t *testing.T) {
	ts := newTestSystem(t)
	srv := NewServer(ts.params, ts.eng, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	client, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Complete one real operation so a handler is mid-loop, then leave the
	// connection open and idle.
	a, b := ts.encrypt(t, 3), ts.encrypt(t, 4)
	if _, _, err := client.Add(a, b); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if got := srv.Served(); got != 1 {
		t.Fatalf("served %d ops through shutdown, want 1", got)
	}
}

// TestServerSlowClientDisconnected: a client that opens a connection and
// stalls mid-request must be cut off by the per-read deadline instead of
// pinning a handler goroutine forever.
func TestServerSlowClientDisconnected(t *testing.T) {
	ts := newTestSystem(t)
	srv := NewServer(ts.params, ts.eng, nil)
	srv.ReadTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request, then silence.
	if _, err := conn.Write([]byte("HEAT\x01")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("server replied to half a request")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the stalled connection")
	}
}

// TestRequestSizeBounded: ReadRequest must never consume more than
// MaxRequestBytes from the stream, whatever the stream claims.
func TestRequestSizeBounded(t *testing.T) {
	ts := newTestSystem(t)
	limit := MaxRequestBytes(ts.params)
	if limit <= 0 || limit > 1<<30 {
		t.Fatalf("implausible MaxRequestBytes %d", limit)
	}
	// A well-formed-looking prefix followed by an endless stream of zeros:
	// the reader must give up with an error after at most `limit` bytes.
	var prefix bytes.Buffer
	prefix.WriteString("HEAT")
	prefix.WriteByte(CmdAdd)
	var hdr [8]byte
	hdr[0] = 3 // element count (max allowed)
	n := uint32(ts.params.N())
	hdr[4], hdr[5], hdr[6], hdr[7] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	prefix.Write(hdr[:])
	cr := &countingReader{r: io.MultiReader(&prefix, zeros{})}
	if _, err := ReadRequest(cr, ts.params); err == nil {
		t.Fatal("bottomless request accepted")
	}
	if cr.n > limit {
		t.Fatalf("ReadRequest consumed %d bytes, bound is %d", cr.n, limit)
	}
}

type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
