package cloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fv"
	"repro/internal/program"
)

// muxKind tells the reader goroutine which response framing to decode for a
// pending request ID.
type muxKind uint8

const (
	muxKindOp muxKind = iota
	muxKindInfo
	muxKindProgram
)

// muxResult is what the reader delivers to a waiting submitter.
type muxResult struct {
	resp *Response
	info *ServerInfo
	prog *ProgramResponse
	err  error
}

type muxPending struct {
	kind muxKind
	ch   chan muxResult
}

// MuxClient is a multiplexed connection to the cloud service: unlike Client,
// it is safe for concurrent use, and up to the negotiated window of requests
// can be in flight at once, completing out of order as the server's workers
// finish. Submissions past the window fail fast with ErrWindowExhausted.
//
// Cancellation is cheap: an abandoned exchange only deregisters its ID — the
// late response is discarded by the reader — so a context deadline does not
// poison the connection the way it breaks a sequential Client.
type MuxClient struct {
	conn   net.Conn
	params *fv.Params
	tenant string
	window int

	sem chan struct{} // in-flight window slots

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]muxPending
	err     error // first connection-fatal error; set once, sticky

	readerDone chan struct{}
}

// DialMux connects to the service, negotiates a multiplexed session under
// the default tenant, and starts the reader.
func DialMux(addr string, params *fv.Params) (*MuxClient, error) {
	return DialMuxTenant(addr, params, "")
}

// DialMuxTenant is DialMux under the given evaluation-key namespace.
func DialMuxTenant(addr string, params *fv.Params, tenant string) (*MuxClient, error) {
	if len(tenant) > MaxTenantLen {
		return nil, fmt.Errorf("cloud: tenant %q longer than %d bytes", tenant, MaxTenantLen)
	}
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	mc, err := NewMuxClient(conn, params, tenant, DefaultMuxWindow)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return mc, nil
}

// NewMuxClient performs the hello exchange over an established connection
// (asking for the given window; the server may grant less) and starts the
// reader goroutine. On success it owns conn.
func NewMuxClient(conn net.Conn, params *fv.Params, tenant string, window int) (*MuxClient, error) {
	if window < 1 {
		window = DefaultMuxWindow
	}
	conn.SetDeadline(time.Now().Add(DialTimeout))
	if err := WriteMuxHello(conn, window); err != nil {
		return nil, fmt.Errorf("cloud: mux hello: %w", err)
	}
	granted, err := ReadMuxHello(conn)
	if err != nil {
		return nil, fmt.Errorf("cloud: mux hello: %w", err)
	}
	if granted > window {
		granted = window
	}
	conn.SetDeadline(time.Time{})
	mc := &MuxClient{
		conn:       conn,
		params:     params,
		tenant:     tenant,
		window:     granted,
		sem:        make(chan struct{}, granted),
		pending:    make(map[uint64]muxPending),
		readerDone: make(chan struct{}),
	}
	go mc.readLoop()
	return mc, nil
}

// Window returns the negotiated in-flight request window.
func (mc *MuxClient) Window() int { return mc.window }

// Tenant returns the namespace this client issues requests under.
func (mc *MuxClient) Tenant() string { return mc.tenant }

// Close tears the connection down; in-flight exchanges fail.
func (mc *MuxClient) Close() error {
	err := mc.conn.Close()
	<-mc.readerDone
	return err
}

// Broken reports whether the connection is dead (a transport error, a
// malformed frame, or Close). A broken MuxClient fails every submission.
func (mc *MuxClient) Broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

// fail marks the connection broken and delivers err to every pending
// exchange.
func (mc *MuxClient) fail(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	stranded := mc.pending
	mc.pending = make(map[uint64]muxPending)
	mc.mu.Unlock()
	for _, p := range stranded {
		p.ch <- muxResult{err: err}
	}
}

// readLoop is the single reader: it decodes frames and dispatches them to
// whichever pending exchange owns the request ID, in whatever order the
// server finished them.
func (mc *MuxClient) readLoop() {
	defer close(mc.readerDone)
	maxPayload := maxMuxPayload(mc.params)
	for {
		f, err := DecodeMuxFrame(mc.conn, maxPayload)
		if errors.Is(err, ErrMuxPayloadChecksum) {
			// The frame boundary is intact: fail only the request the
			// corrupted payload belonged to and keep reading.
			if p, ok := mc.take(f.ID); ok {
				p.ch <- muxResult{err: err}
			}
			continue
		}
		if err != nil {
			mc.fail(fmt.Errorf("cloud: mux connection lost: %w", err))
			return
		}
		p, ok := mc.take(f.ID)
		if !ok {
			continue // canceled exchange; drop the late response
		}
		p.ch <- mc.decode(p.kind, f)
	}
}

// take removes and returns the pending entry for id.
func (mc *MuxClient) take(id uint64) (muxPending, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	p, ok := mc.pending[id]
	if ok {
		delete(mc.pending, id)
	}
	return p, ok
}

// decode parses a response payload with the framing the pending request
// expects, reusing the sequential protocol's hardened decoders.
func (mc *MuxClient) decode(kind muxKind, f *MuxFrame) muxResult {
	r := bytes.NewReader(f.Payload)
	switch kind {
	case muxKindInfo:
		id, info, err := ReadInfoResponse(r)
		if err != nil {
			return muxResult{err: err}
		}
		if id != f.ID {
			return muxResult{err: fmt.Errorf("%w: inner info ID %d under frame ID %d",
				ErrMalformedResponse, id, f.ID)}
		}
		return muxResult{info: info}
	case muxKindProgram:
		resp, err := ReadProgramResponse(r, mc.params)
		if err != nil {
			return muxResult{err: err}
		}
		if resp.ID != f.ID {
			return muxResult{err: fmt.Errorf("%w: inner program ID %d under frame ID %d",
				ErrMalformedResponse, resp.ID, f.ID)}
		}
		return muxResult{prog: resp}
	default:
		resp, err := ReadResponseV(r, mc.params, ProtoV2)
		if err != nil {
			return muxResult{err: err}
		}
		if resp.ID != f.ID {
			return muxResult{err: fmt.Errorf("%w: inner response ID %d under frame ID %d",
				ErrMalformedResponse, resp.ID, f.ID)}
		}
		return muxResult{resp: resp}
	}
}

// submit encodes req as a v2 payload, frames it, and waits for its response
// under ctx. It implements the window: a full window fails immediately with
// ErrWindowExhausted rather than queueing.
func (mc *MuxClient) submit(ctx context.Context, req *Request, kind muxKind) (muxResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return muxResult{}, err
	}
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return muxResult{}, err
	}
	mc.mu.Unlock()

	select {
	case mc.sem <- struct{}{}:
	default:
		return muxResult{}, fmt.Errorf("%w (window %d)", ErrWindowExhausted, mc.window)
	}
	defer func() { <-mc.sem }()

	req.Ver = ProtoV2
	if req.Tenant == "" {
		req.Tenant = mc.tenant
	}
	p := muxPending{kind: kind, ch: make(chan muxResult, 1)}
	mc.mu.Lock()
	mc.nextID++
	req.ID = mc.nextID
	mc.pending[req.ID] = p
	mc.mu.Unlock()

	var buf bytes.Buffer
	if err := WriteRequest(&buf, mc.params, req); err != nil {
		mc.take(req.ID)
		return muxResult{}, err
	}
	mc.wmu.Lock()
	err := WriteMuxFrame(mc.conn, MuxFrameRequest, req.ID, buf.Bytes())
	mc.wmu.Unlock()
	if err != nil {
		mc.take(req.ID)
		mc.fail(fmt.Errorf("cloud: mux write: %w", err))
		return muxResult{}, err
	}

	select {
	case res := <-p.ch:
		return res, nil
	case <-ctx.Done():
		// Abandon the exchange: deregister so the reader discards the late
		// response. The connection itself stays healthy.
		mc.take(req.ID)
		return muxResult{}, ctx.Err()
	}
}

// Do runs one operation exchange. A server-reported failure is returned as
// *ServerError alongside the response, matching Client.Do.
func (mc *MuxClient) Do(ctx context.Context, req *Request) (*Response, error) {
	res, err := mc.submit(ctx, req, muxKindOp)
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}
	if res.resp.Err != "" {
		return res.resp, &ServerError{Code: res.resp.Code, Msg: res.resp.Err}
	}
	return res.resp, nil
}

// AddCtx asks the cloud to add two ciphertexts.
func (mc *MuxClient) AddCtx(ctx context.Context, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := mc.Do(ctx, &Request{Cmd: CmdAdd, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// MulCtx asks the cloud to multiply two ciphertexts (relinearized
// server-side).
func (mc *MuxClient) MulCtx(ctx context.Context, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := mc.Do(ctx, &Request{Cmd: CmdMul, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// RotateCtx asks the cloud to apply the Galois automorphism g.
func (mc *MuxClient) RotateCtx(ctx context.Context, a *fv.Ciphertext, g int) (*fv.Ciphertext, time.Duration, error) {
	resp, err := mc.Do(ctx, &Request{Cmd: CmdRotate, G: uint32(g), A: a})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// PingCtx verifies the service is alive.
func (mc *MuxClient) PingCtx(ctx context.Context) error {
	_, err := mc.Do(ctx, &Request{Cmd: CmdPing})
	return err
}

// Info asks the server what it is.
func (mc *MuxClient) Info(ctx context.Context) (*ServerInfo, error) {
	res, err := mc.submit(ctx, &Request{Cmd: CmdInfo}, muxKindInfo)
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}
	return res.info, nil
}

// DoProgram runs one CmdProgram exchange.
func (mc *MuxClient) DoProgram(ctx context.Context, req *Request) (*ProgramResponse, error) {
	req.Cmd = CmdProgram
	res, err := mc.submit(ctx, req, muxKindProgram)
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}
	if res.prog.Err != "" {
		return res.prog, &ServerError{Code: res.prog.Code, Msg: res.prog.Err}
	}
	return res.prog, nil
}

// RunProgram serializes an already-built program and submits it with its
// inputs as one frame, returning every output.
func (mc *MuxClient) RunProgram(ctx context.Context, p *program.Program, inputs []*fv.Ciphertext) (*ProgramResponse, error) {
	data, err := p.EncodeBytes()
	if err != nil {
		return nil, err
	}
	return mc.DoProgram(ctx, &Request{ProgBytes: data, Inputs: inputs})
}
