// Package cloud implements the client/server system of the paper's Fig. 11
// over TCP: a server process owning the (simulated) Arm+FPGA platform — one
// networking goroutine accepting connections and two application workers,
// each driving its own co-processor — and a client that uploads encrypted
// operands and receives encrypted results. This is the deployment shape the
// paper targets ("make the Arm processor a server for executing different
// homomorphic applications in the cloud, using this FPGA-based
// co-processor").
package cloud

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/fv"
)

// Command codes of the wire protocol.
const (
	CmdAdd    uint8 = 1
	CmdMul    uint8 = 2
	CmdPing   uint8 = 3
	CmdRotate uint8 = 4 // Galois automorphism; G carries the element

	statusOK  uint8 = 0
	statusErr uint8 = 1
)

// protocolMagic guards against a client speaking to the wrong service.
var protocolMagic = [4]byte{'H', 'E', 'A', 'T'}

// MaxRequestBytes returns the upper bound of one serialized request under
// params: magic + command + Galois element, plus two ciphertexts of at most
// three elements each. ReadRequest refuses to consume more than this from
// the connection, so a malicious or corrupted stream cannot make the server
// read (or allocate) without bound.
func MaxRequestBytes(params *fv.Params) int {
	ctMax := 8 + 3*params.QBasis.K()*params.N()*4
	return 4 + 1 + 4 + 2*ctMax
}

// Request is one homomorphic operation on uploaded ciphertexts.
type Request struct {
	Cmd  uint8
	G    uint32 // Galois element (CmdRotate only)
	A, B *fv.Ciphertext
}

// WriteRequest serializes a request.
func WriteRequest(w io.Writer, params *fv.Params, req *Request) error {
	if _, err := w.Write(protocolMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{req.Cmd}); err != nil {
		return err
	}
	switch req.Cmd {
	case CmdPing:
		return nil
	case CmdRotate:
		var g [4]byte
		binary.LittleEndian.PutUint32(g[:], req.G)
		if _, err := w.Write(g[:]); err != nil {
			return err
		}
		return req.A.WriteTo(w, params)
	}
	if err := req.A.WriteTo(w, params); err != nil {
		return err
	}
	return req.B.WriteTo(w, params)
}

// ReadRequest deserializes a request. It reads at most
// MaxRequestBytes(params) from r; a message claiming more than that fails
// with an unexpected-EOF error instead of wedging the reader.
func ReadRequest(r io.Reader, params *fv.Params) (*Request, error) {
	r = io.LimitReader(r, int64(MaxRequestBytes(params)))
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != protocolMagic {
		return nil, fmt.Errorf("cloud: bad protocol magic %q", hdr[:4])
	}
	req := &Request{Cmd: hdr[4]}
	switch req.Cmd {
	case CmdPing:
		return req, nil
	case CmdRotate:
		var g [4]byte
		if _, err := io.ReadFull(r, g[:]); err != nil {
			return nil, err
		}
		req.G = binary.LittleEndian.Uint32(g[:])
		var err error
		if req.A, err = fv.ReadCiphertext(r, params); err != nil {
			return nil, fmt.Errorf("cloud: reading operand A: %w", err)
		}
		return req, nil
	case CmdAdd, CmdMul:
	default:
		return nil, fmt.Errorf("cloud: unknown command %d", req.Cmd)
	}
	var err error
	if req.A, err = fv.ReadCiphertext(r, params); err != nil {
		return nil, fmt.Errorf("cloud: reading operand A: %w", err)
	}
	if req.B, err = fv.ReadCiphertext(r, params); err != nil {
		return nil, fmt.Errorf("cloud: reading operand B: %w", err)
	}
	return req, nil
}

// Response carries the result ciphertext and the simulated hardware timing.
type Response struct {
	Err          string
	Result       *fv.Ciphertext
	ComputeNanos uint64 // simulated co-processor latency
	Worker       uint32 // which application core / co-processor served it
}

// WriteResponse serializes a response.
func WriteResponse(w io.Writer, params *fv.Params, resp *Response) error {
	if resp.Err != "" {
		if _, err := w.Write([]byte{statusErr}); err != nil {
			return err
		}
		msg := []byte(resp.Err)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(msg)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		_, err := w.Write(msg)
		return err
	}
	if _, err := w.Write([]byte{statusOK}); err != nil {
		return err
	}
	var meta [12]byte
	binary.LittleEndian.PutUint64(meta[:8], resp.ComputeNanos)
	binary.LittleEndian.PutUint32(meta[8:], resp.Worker)
	if _, err := w.Write(meta[:]); err != nil {
		return err
	}
	return resp.Result.WriteTo(w, params)
}

// ReadResponse deserializes a response.
func ReadResponse(r io.Reader, params *fv.Params) (*Response, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, err
	}
	if status[0] == statusErr {
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, err
		}
		ln := binary.LittleEndian.Uint32(n[:])
		if ln > 1<<16 {
			return nil, fmt.Errorf("cloud: implausible error length %d", ln)
		}
		msg := make([]byte, ln)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, err
		}
		return &Response{Err: string(msg)}, nil
	}
	var meta [12]byte
	if _, err := io.ReadFull(r, meta[:]); err != nil {
		return nil, err
	}
	ct, err := fv.ReadCiphertext(r, params)
	if err != nil {
		return nil, err
	}
	return &Response{
		Result:       ct,
		ComputeNanos: binary.LittleEndian.Uint64(meta[:8]),
		Worker:       binary.LittleEndian.Uint32(meta[8:]),
	}, nil
}
