// Package cloud implements the client/server system of the paper's Fig. 11
// over TCP: a server process owning the (simulated) Arm+FPGA platform — one
// networking goroutine accepting connections and two application workers,
// each driving its own co-processor — and a client that uploads encrypted
// operands and receives encrypted results. This is the deployment shape the
// paper targets ("make the Arm processor a server for executing different
// homomorphic applications in the cloud, using this FPGA-based
// co-processor").
//
// # Wire protocol versions
//
// Two framings coexist on the same port:
//
//	v1 ("HEAT"): magic, command byte, payload. No tenant, no request ID.
//	v2 ("HEA2"): magic, version byte, command byte, request ID (8 bytes LE),
//	             tenant (1-byte length + UTF-8 bytes), payload.
//
// The compatibility rule: a server answers in the version the request
// arrived in, and a v1 request is served under the default tenant ("") with
// request ID 0. New clients default to v2; v1 stays on the wire unchanged so
// pre-cluster clients keep working. v2 responses additionally echo the
// request ID and carry an error code that distinguishes retryable
// unavailability (overload, shutdown, queue-deadline) from application
// errors, which is what the cluster router keys failover on.
package cloud

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/ckks"
	"repro/internal/fv"
	"repro/internal/program"
)

// Typed decode errors. Every structurally invalid frame — bad magic, bad
// version, out-of-range length, unknown command or status byte, truncation
// after the magic matched, or an invalid ciphertext body — is reported as an
// error wrapping one of these, so callers can distinguish "the peer spoke
// garbage" (drop the connection) from transport errors (retry elsewhere).
// A clean EOF before any byte of a frame is NOT malformed: it is how a peer
// hangs up between requests, and it surfaces as io.EOF.
var (
	ErrMalformedRequest  = errors.New("cloud: malformed request")
	ErrMalformedResponse = errors.New("cloud: malformed response")
)

// malformed wraps err as a malformed-frame error once the frame has started
// (the magic or status byte was consumed): from that point truncation is
// corruption, not a clean close.
func malformed(sentinel error, context string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: %w", sentinel, context, err)
}

// Protocol versions. ProtoV1 is the original framing; ProtoV2 adds the
// request ID and tenant fields the cluster layer routes on.
const (
	ProtoV1 uint8 = 1
	ProtoV2 uint8 = 2
)

// MaxTenantLen bounds the tenant field of a v2 request (it is
// length-prefixed with one byte, and routers hash it on every request).
const MaxTenantLen = 128

// Command codes of the wire protocol.
const (
	CmdAdd    uint8 = 1
	CmdMul    uint8 = 2
	CmdPing   uint8 = 3
	CmdRotate uint8 = 4 // Galois automorphism; G carries the element
	CmdInfo   uint8 = 5 // server capability advertisement (v2 only)
	// CmdProgram submits a whole compiled circuit (internal/program) as one
	// request: the serialized program plus its input ciphertexts, answered
	// with every output ciphertext. One round trip instead of one per gate
	// (v2 only).
	CmdProgram uint8 = 6
	// CKKS approximate-arithmetic commands (v2 only): the siblings of
	// CmdAdd/CmdMul/CmdRotate over CKKS ciphertexts. CmdCKKSMul includes the
	// trailing rescale (the result arrives one level down); CmdCKKSRotate
	// carries the slot rotation count in the request's R field. Servers
	// without CKKS parameters treat these frames as malformed — clients
	// discover support via CmdInfo's CKKS flag.
	CmdCKKSAdd    uint8 = 7
	CmdCKKSMul    uint8 = 8
	CmdCKKSRotate uint8 = 9

	// Key-state migration commands (v2 only). CmdKeyExport asks a node for
	// the complete evaluation-key set of the request's tenant (both schemes),
	// answered with a checksummed key blob; CmdKeyImport installs such a blob
	// on a node. The cluster migrator uses the pair to move tenant key state
	// ahead of a routing cutover.
	CmdKeyExport uint8 = 10
	CmdKeyImport uint8 = 11
	// CmdAdmin carries a cluster-membership control message (join / leave /
	// drain) as a small JSON body. Only the routing tier accepts it; data
	// nodes answer with an error.
	CmdAdmin uint8 = 12

	statusOK  uint8 = 0
	statusErr uint8 = 1
)

// isCKKSCmd reports whether cmd is one of the CKKS commands.
func isCKKSCmd(cmd uint8) bool {
	return cmd == CmdCKKSAdd || cmd == CmdCKKSMul || cmd == CmdCKKSRotate
}

// Error codes carried by v2 error responses. v1 responses have no code and
// decode as CodeApp.
const (
	// CodeApp is a deterministic application error (bad operand, missing
	// evaluation key); retrying elsewhere would fail the same way.
	CodeApp uint8 = 0
	// CodeUnavailable means this node could not serve the request right now
	// (overloaded, shutting down, queue deadline expired). The operation did
	// not execute; an idempotent request may be retried on a replica.
	CodeUnavailable uint8 = 1
	// CodeIntegrity means this node's co-processor detected corrupted
	// state (a fingerprint mismatch) and refused to return the result. The
	// fault is node-local — bad BRAM, a glitched DMA, a dying compute unit —
	// so an idempotent request should be retried, ideally on a replica.
	CodeIntegrity uint8 = 2
	// CodeQuota means the tenant's per-node in-flight quota refused the
	// admission. The operation never executed and other replicas count the
	// tenant separately, so an idempotent request may be retried elsewhere
	// or after backoff.
	CodeQuota uint8 = 3
)

// Protocol magics: v1 and v2 framing share the port and are told apart by
// the first four bytes.
var (
	protocolMagic   = [4]byte{'H', 'E', 'A', 'T'}
	protocolMagicV2 = [4]byte{'H', 'E', 'A', '2'}
)

// MaxRequestBytes returns the upper bound of one serialized request under
// params: the larger v2 header (magic + version + command + request ID +
// tenant + Galois element) plus two ciphertexts of at most three elements
// each. ReadRequest refuses to consume more than this from the connection,
// so a malicious or corrupted stream cannot make the server read (or
// allocate) without bound.
func MaxRequestBytes(params *fv.Params) int {
	ctMax := 8 + 3*params.QBasis.K()*params.N()*4
	return 4 + 1 + 1 + 8 + 1 + MaxTenantLen + 4 + 2*ctMax
}

// ProgramLimits is the decode budget for programs arriving on the wire —
// the program codec's DefaultLimits. A frame claiming more is malformed.
func ProgramLimits() program.Limits { return program.DefaultLimits() }

// MaxProgramRequestBytes returns the upper bound of one CmdProgram request:
// the v2 header, the largest program ProgramLimits admits, and one
// ciphertext per allowed program input.
func MaxProgramRequestBytes(params *fv.Params) int {
	ctMax := 8 + 3*params.QBasis.K()*params.N()*4
	l := ProgramLimits()
	return 4 + 1 + 1 + 8 + 1 + MaxTenantLen + 4 + l.MaxEncodedBytes() + 4 + l.MaxInputs*ctMax
}

// Request is one homomorphic operation on uploaded ciphertexts.
type Request struct {
	Cmd uint8
	G   uint32 // Galois element (CmdRotate only)
	// Ver selects the wire framing; 0 and ProtoV1 write v1, ProtoV2 writes
	// v2 with the ID and Tenant fields below.
	Ver    uint8
	ID     uint64 // request ID, echoed in the v2 response
	Tenant string // evaluation-key namespace; "" is the default tenant
	A, B   *fv.Ciphertext

	// CA and CB are the CKKS operands (CmdCKKS* commands); R is the slot
	// rotation count of CmdCKKSRotate.
	CA, CB *ckks.Ciphertext
	R      int32

	// ProgBytes and Inputs carry a CmdProgram payload: the serialized
	// program (framing validated here, semantics by program.Decode on the
	// server so a bad program yields an error response, not a dropped
	// connection) and its input ciphertexts in program order.
	ProgBytes []byte
	Inputs    []*fv.Ciphertext

	// Blob carries the opaque payload of CmdKeyImport (a tenant key blob,
	// see EncodeTenantKeys) or CmdAdmin (a JSON AdminRequest). Framed as a
	// length-prefixed byte string; semantics are validated server-side so a
	// bad blob yields an error response, not a dropped connection.
	Blob []byte
}

// WriteRequest serializes a request in the framing req.Ver selects.
func WriteRequest(w io.Writer, params *fv.Params, req *Request) error {
	if req.Ver >= ProtoV2 {
		if len(req.Tenant) > MaxTenantLen {
			return fmt.Errorf("cloud: tenant %q longer than %d bytes", req.Tenant, MaxTenantLen)
		}
		hdr := make([]byte, 0, 4+1+1+8+1+len(req.Tenant))
		hdr = append(hdr, protocolMagicV2[:]...)
		hdr = append(hdr, ProtoV2, req.Cmd)
		hdr = binary.LittleEndian.AppendUint64(hdr, req.ID)
		hdr = append(hdr, byte(len(req.Tenant)))
		hdr = append(hdr, req.Tenant...)
		if _, err := w.Write(hdr); err != nil {
			return err
		}
	} else {
		if _, err := w.Write(protocolMagic[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{req.Cmd}); err != nil {
			return err
		}
	}
	return writeRequestBody(w, params, req)
}

func writeRequestBody(w io.Writer, params *fv.Params, req *Request) error {
	switch req.Cmd {
	case CmdPing, CmdInfo, CmdKeyExport:
		return nil
	case CmdKeyImport, CmdAdmin:
		// The receiver enforces the tight bound (MaxKeyBlobBytes under its
		// own parameter sets, MaxAdminBytes for admin); the writer only
		// refuses frames it could never legally produce.
		if len(req.Blob) == 0 {
			return fmt.Errorf("cloud: %s needs a payload", cmdName(req.Cmd))
		}
		if req.Cmd == CmdAdmin && len(req.Blob) > MaxAdminBytes {
			return fmt.Errorf("cloud: admin payload of %d bytes exceeds %d", len(req.Blob), MaxAdminBytes)
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(req.Blob)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		_, err := w.Write(req.Blob)
		return err
	case CmdProgram:
		l := ProgramLimits()
		if len(req.ProgBytes) == 0 || len(req.ProgBytes) > l.MaxEncodedBytes() {
			return fmt.Errorf("cloud: program of %d bytes outside (0, %d]", len(req.ProgBytes), l.MaxEncodedBytes())
		}
		if len(req.Inputs) == 0 || len(req.Inputs) > l.MaxInputs {
			return fmt.Errorf("cloud: %d program inputs outside (0, %d]", len(req.Inputs), l.MaxInputs)
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(req.ProgBytes)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := w.Write(req.ProgBytes); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(n[:], uint32(len(req.Inputs)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		for _, ct := range req.Inputs {
			if err := ct.WriteTo(w, params); err != nil {
				return err
			}
		}
		return nil
	case CmdRotate:
		var g [4]byte
		binary.LittleEndian.PutUint32(g[:], req.G)
		if _, err := w.Write(g[:]); err != nil {
			return err
		}
		return req.A.WriteTo(w, params)
	case CmdCKKSAdd, CmdCKKSMul:
		if err := req.CA.Write(w); err != nil {
			return err
		}
		return req.CB.Write(w)
	case CmdCKKSRotate:
		var r4 [4]byte
		binary.LittleEndian.PutUint32(r4[:], uint32(req.R))
		if _, err := w.Write(r4[:]); err != nil {
			return err
		}
		return req.CA.Write(w)
	}
	if err := req.A.WriteTo(w, params); err != nil {
		return err
	}
	return req.B.WriteTo(w, params)
}

// MaxCKKSRequestBytes returns the upper bound of one CmdCKKS* request: the
// v2 header and rotation count plus two ciphertexts of at most three
// elements at the top of the chain.
func MaxCKKSRequestBytes(cparams *ckks.Params) int {
	ctMax := ckks.ByteSize(3, cparams.MaxLevel(), cparams.N())
	return 4 + 1 + 1 + 8 + 1 + MaxTenantLen + 4 + 2*ctMax
}

// ReadRequest deserializes a request in either framing. It reads at most
// MaxRequestBytes(params) from r; a message claiming more than that fails
// with an unexpected-EOF error instead of wedging the reader. CKKS commands
// are rejected as malformed — use ReadRequestCKKS on CKKS-enabled servers.
func ReadRequest(r io.Reader, params *fv.Params) (*Request, error) {
	return ReadRequestCKKS(r, params, nil)
}

// ReadRequestCKKS is ReadRequest plus the CKKS commands, whose ciphertext
// bodies decode under cparams. A nil cparams refuses those commands (the
// server cannot even frame the body without the parameter set).
func ReadRequestCKKS(r io.Reader, params *fv.Params, cparams *ckks.Params) (*Request, error) {
	limit := MaxRequestBytes(params)
	if pl := MaxProgramRequestBytes(params); pl > limit {
		limit = pl
	}
	if cparams != nil {
		if cl := MaxCKKSRequestBytes(cparams); cl > limit {
			limit = cl
		}
	}
	if kl := MaxKeyBlobBytes(params, cparams) + 4 + 1 + 1 + 8 + 1 + MaxTenantLen + 4; kl > limit {
		limit = kl
	}
	r = io.LimitReader(r, int64(limit))
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	req := &Request{}
	switch magic {
	case protocolMagic:
		req.Ver = ProtoV1
		var cmd [1]byte
		if _, err := io.ReadFull(r, cmd[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated v1 header", err)
		}
		req.Cmd = cmd[0]
	case protocolMagicV2:
		var hdr [10]byte // version, command, request ID
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated v2 header", err)
		}
		if hdr[0] != ProtoV2 {
			return nil, fmt.Errorf("%w: unsupported protocol version %d", ErrMalformedRequest, hdr[0])
		}
		req.Ver = hdr[0]
		req.Cmd = hdr[1]
		req.ID = binary.LittleEndian.Uint64(hdr[2:])
		var tlen [1]byte
		if _, err := io.ReadFull(r, tlen[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated tenant length", err)
		}
		if int(tlen[0]) > MaxTenantLen {
			return nil, fmt.Errorf("%w: tenant length %d exceeds %d", ErrMalformedRequest, tlen[0], MaxTenantLen)
		}
		tenant := make([]byte, tlen[0])
		if _, err := io.ReadFull(r, tenant); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated tenant", err)
		}
		req.Tenant = string(tenant)
	default:
		return nil, fmt.Errorf("%w: bad protocol magic %q", ErrMalformedRequest, magic[:])
	}

	switch req.Cmd {
	case CmdPing:
		return req, nil
	case CmdInfo, CmdKeyExport:
		if req.Ver < ProtoV2 {
			return nil, fmt.Errorf("%w: %s requires protocol v2", ErrMalformedRequest, cmdName(req.Cmd))
		}
		return req, nil
	case CmdKeyImport, CmdAdmin:
		if req.Ver < ProtoV2 {
			return nil, fmt.Errorf("%w: %s requires protocol v2", ErrMalformedRequest, cmdName(req.Cmd))
		}
		maxBlob := MaxAdminBytes
		if req.Cmd == CmdKeyImport {
			maxBlob = MaxKeyBlobBytes(params, cparams)
		}
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated payload length", err)
		}
		blen := binary.LittleEndian.Uint32(n[:])
		if blen == 0 || int64(blen) > int64(maxBlob) {
			return nil, fmt.Errorf("%w: %s payload length %d outside (0, %d]", ErrMalformedRequest, cmdName(req.Cmd), blen, maxBlob)
		}
		req.Blob = make([]byte, blen)
		if _, err := io.ReadFull(r, req.Blob); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated payload", err)
		}
		return req, nil
	case CmdProgram:
		if req.Ver < ProtoV2 {
			return nil, fmt.Errorf("%w: %s requires protocol v2", ErrMalformedRequest, cmdName(req.Cmd))
		}
		l := ProgramLimits()
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated program length", err)
		}
		plen := binary.LittleEndian.Uint32(n[:])
		if plen == 0 || int64(plen) > int64(l.MaxEncodedBytes()) {
			return nil, fmt.Errorf("%w: program length %d outside (0, %d]", ErrMalformedRequest, plen, l.MaxEncodedBytes())
		}
		req.ProgBytes = make([]byte, plen)
		if _, err := io.ReadFull(r, req.ProgBytes); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated program", err)
		}
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated input count", err)
		}
		ni := binary.LittleEndian.Uint32(n[:])
		if ni == 0 || int64(ni) > int64(l.MaxInputs) {
			return nil, fmt.Errorf("%w: %d program inputs outside (0, %d]", ErrMalformedRequest, ni, l.MaxInputs)
		}
		req.Inputs = make([]*fv.Ciphertext, ni)
		for i := range req.Inputs {
			var err error
			if req.Inputs[i], err = fv.ReadCiphertext(r, params); err != nil {
				return nil, malformed(ErrMalformedRequest, fmt.Sprintf("reading program input %d", i), err)
			}
		}
		return req, nil
	case CmdRotate:
		var g [4]byte
		if _, err := io.ReadFull(r, g[:]); err != nil {
			return nil, malformed(ErrMalformedRequest, "truncated Galois element", err)
		}
		req.G = binary.LittleEndian.Uint32(g[:])
		var err error
		if req.A, err = fv.ReadCiphertext(r, params); err != nil {
			return nil, malformed(ErrMalformedRequest, "reading operand A", err)
		}
		return req, nil
	case CmdCKKSAdd, CmdCKKSMul, CmdCKKSRotate:
		if req.Ver < ProtoV2 {
			return nil, fmt.Errorf("%w: %s requires protocol v2", ErrMalformedRequest, cmdName(req.Cmd))
		}
		if cparams == nil {
			return nil, fmt.Errorf("%w: %s on a server without CKKS parameters", ErrMalformedRequest, cmdName(req.Cmd))
		}
		if req.Cmd == CmdCKKSRotate {
			var r4 [4]byte
			if _, err := io.ReadFull(r, r4[:]); err != nil {
				return nil, malformed(ErrMalformedRequest, "truncated rotation count", err)
			}
			req.R = int32(binary.LittleEndian.Uint32(r4[:]))
		}
		var err error
		if req.CA, err = ckks.ReadCiphertext(r, cparams); err != nil {
			return nil, malformed(ErrMalformedRequest, "reading CKKS operand A", err)
		}
		if req.Cmd != CmdCKKSRotate {
			if req.CB, err = ckks.ReadCiphertext(r, cparams); err != nil {
				return nil, malformed(ErrMalformedRequest, "reading CKKS operand B", err)
			}
		}
		return req, nil
	case CmdAdd, CmdMul:
	default:
		return nil, fmt.Errorf("%w: unknown command %d", ErrMalformedRequest, req.Cmd)
	}
	var err error
	if req.A, err = fv.ReadCiphertext(r, params); err != nil {
		return nil, malformed(ErrMalformedRequest, "reading operand A", err)
	}
	if req.B, err = fv.ReadCiphertext(r, params); err != nil {
		return nil, malformed(ErrMalformedRequest, "reading operand B", err)
	}
	return req, nil
}

func cmdName(cmd uint8) string {
	switch cmd {
	case CmdAdd:
		return "add"
	case CmdMul:
		return "mul"
	case CmdPing:
		return "ping"
	case CmdRotate:
		return "rotate"
	case CmdInfo:
		return "info"
	case CmdProgram:
		return "program"
	case CmdCKKSAdd:
		return "ckks_add"
	case CmdCKKSMul:
		return "ckks_mul"
	case CmdCKKSRotate:
		return "ckks_rotate"
	case CmdKeyExport:
		return "key_export"
	case CmdKeyImport:
		return "key_import"
	case CmdAdmin:
		return "admin"
	}
	return fmt.Sprintf("cmd(%d)", cmd)
}

// Response carries the result ciphertext and the simulated hardware timing.
type Response struct {
	Err  string
	Code uint8 // error code (v2; CodeApp or CodeUnavailable)
	// Ver selects the response framing and must match the request's version;
	// ID echoes the request ID on v2.
	Ver          uint8
	ID           uint64
	Result       *fv.Ciphertext
	CKKSResult   *ckks.Ciphertext // result of a CKKS command (Result is nil)
	ComputeNanos uint64           // simulated co-processor latency
	Worker       uint32           // which application core / co-processor served it
}

// WriteResponse serializes a response in the framing resp.Ver selects.
func WriteResponse(w io.Writer, params *fv.Params, resp *Response) error {
	if resp.Err != "" {
		if _, err := w.Write([]byte{statusErr}); err != nil {
			return err
		}
		if resp.Ver >= ProtoV2 {
			var id [9]byte
			binary.LittleEndian.PutUint64(id[:8], resp.ID)
			id[8] = resp.Code
			if _, err := w.Write(id[:]); err != nil {
				return err
			}
		}
		msg := []byte(resp.Err)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(msg)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		_, err := w.Write(msg)
		return err
	}
	if _, err := w.Write([]byte{statusOK}); err != nil {
		return err
	}
	if resp.Ver >= ProtoV2 {
		var id [8]byte
		binary.LittleEndian.PutUint64(id[:], resp.ID)
		if _, err := w.Write(id[:]); err != nil {
			return err
		}
	}
	var meta [12]byte
	binary.LittleEndian.PutUint64(meta[:8], resp.ComputeNanos)
	binary.LittleEndian.PutUint32(meta[8:], resp.Worker)
	if _, err := w.Write(meta[:]); err != nil {
		return err
	}
	if resp.CKKSResult != nil {
		return resp.CKKSResult.Write(w)
	}
	return resp.Result.WriteTo(w, params)
}

// ReadResponse deserializes a v1 response.
func ReadResponse(r io.Reader, params *fv.Params) (*Response, error) {
	return ReadResponseV(r, params, ProtoV1)
}

// ReadResponseV deserializes a response in the given protocol version — the
// version of the request it answers, which the caller knows.
func ReadResponseV(r io.Reader, params *fv.Params, ver uint8) (*Response, error) {
	resp, ok, err := readResponseEnvelope(r, ver)
	if err != nil || !ok {
		return resp, err
	}
	ct, err := fv.ReadCiphertext(r, params)
	if err != nil {
		return nil, malformed(ErrMalformedResponse, "reading result", err)
	}
	resp.Result = ct
	return resp, nil
}

// ReadCKKSResponseV deserializes the response to a CKKS command: the same
// envelope, with the result decoding as a CKKS ciphertext under cparams.
func ReadCKKSResponseV(r io.Reader, cparams *ckks.Params, ver uint8) (*Response, error) {
	resp, ok, err := readResponseEnvelope(r, ver)
	if err != nil || !ok {
		return resp, err
	}
	ct, err := ckks.ReadCiphertext(r, cparams)
	if err != nil {
		return nil, malformed(ErrMalformedResponse, "reading CKKS result", err)
	}
	resp.CKKSResult = ct
	return resp, nil
}

// readResponseEnvelope decodes the scheme-independent part of a response —
// status, request ID, error or timing metadata — up to the result
// ciphertext. ok reports whether a result body follows (false for error
// responses, which are complete).
func readResponseEnvelope(r io.Reader, ver uint8) (*Response, bool, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, false, err
	}
	resp := &Response{Ver: ver}
	switch status[0] {
	case statusOK:
	case statusErr:
		if ver >= ProtoV2 {
			var id [9]byte
			if _, err := io.ReadFull(r, id[:]); err != nil {
				return nil, false, malformed(ErrMalformedResponse, "truncated error header", err)
			}
			resp.ID = binary.LittleEndian.Uint64(id[:8])
			resp.Code = id[8]
		}
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, false, malformed(ErrMalformedResponse, "truncated error length", err)
		}
		ln := binary.LittleEndian.Uint32(n[:])
		if ln > 1<<16 {
			return nil, false, fmt.Errorf("%w: implausible error length %d", ErrMalformedResponse, ln)
		}
		if ln == 0 {
			// An empty message would make the decoded response look like a
			// success (Err == "" is the discriminator callers use).
			return nil, false, fmt.Errorf("%w: empty error message", ErrMalformedResponse)
		}
		msg := make([]byte, ln)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, false, malformed(ErrMalformedResponse, "truncated error message", err)
		}
		resp.Err = string(msg)
		return resp, false, nil
	default:
		// A corrupted stream must not be mistaken for a success frame — the
		// bytes after an unknown status would be parsed as a ciphertext.
		return nil, false, fmt.Errorf("%w: unknown status byte %d", ErrMalformedResponse, status[0])
	}
	if ver >= ProtoV2 {
		var id [8]byte
		if _, err := io.ReadFull(r, id[:]); err != nil {
			return nil, false, malformed(ErrMalformedResponse, "truncated response ID", err)
		}
		resp.ID = binary.LittleEndian.Uint64(id[:])
	}
	var meta [12]byte
	if _, err := io.ReadFull(r, meta[:]); err != nil {
		return nil, false, malformed(ErrMalformedResponse, "truncated timing metadata", err)
	}
	resp.ComputeNanos = binary.LittleEndian.Uint64(meta[:8])
	resp.Worker = binary.LittleEndian.Uint32(meta[8:])
	return resp, true, nil
}

// ServerInfo is the CmdInfo reply: what the node is and what it speaks. The
// cluster layer uses it to discover tenant support; heserver advertises its
// node ID and registered tenants here.
type ServerInfo struct {
	Proto       uint8    `json:"proto"` // highest protocol version served
	NodeID      string   `json:"node_id,omitempty"`
	Workers     int      `json:"workers"`
	TenantAware bool     `json:"tenant_aware"`
	CKKS        bool     `json:"ckks,omitempty"`    // serves the CmdCKKS* commands
	Tenants     []string `json:"tenants,omitempty"` // namespaces with registered keys
}

// maxInfoBytes bounds the JSON body of an info response.
const maxInfoBytes = 1 << 20

// WriteInfoResponse serializes a CmdInfo reply (v2 framing only).
func WriteInfoResponse(w io.Writer, id uint64, info *ServerInfo) error {
	body, err := json.Marshal(info)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, 1+8+4)
	hdr = append(hdr, statusOK)
	hdr = binary.LittleEndian.AppendUint64(hdr, id)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadInfoResponse deserializes a CmdInfo reply.
func ReadInfoResponse(r io.Reader) (uint64, *ServerInfo, error) {
	var hdr [13]byte // status, id, length
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	id := binary.LittleEndian.Uint64(hdr[1:9])
	ln := binary.LittleEndian.Uint32(hdr[9:])
	if ln > maxInfoBytes {
		return 0, nil, fmt.Errorf("cloud: implausible info length %d", ln)
	}
	body := make([]byte, ln)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	if hdr[0] == statusErr {
		return id, nil, &ServerError{Msg: string(body)}
	}
	var info ServerInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return 0, nil, fmt.Errorf("cloud: decoding info: %w", err)
	}
	return id, &info, nil
}

// ProgramResponse answers a CmdProgram request: every program output plus
// the scheduler's accounting (v2 framing only).
type ProgramResponse struct {
	Err  string
	Code uint8
	ID   uint64

	Outputs []*fv.Ciphertext
	// MakespanNanos is the simulated completion time of the scheduled DAG;
	// SerialNanos is the one-lane cost of the same nodes — what op-at-a-time
	// submission would have paid in compute alone, before round trips.
	MakespanNanos uint64
	SerialNanos   uint64
	KeyLoads      uint32 // evaluation keys streamed (once each per program)
	Nodes         uint32 // DAG nodes executed
}

// WriteProgramResponse serializes a CmdProgram reply.
func WriteProgramResponse(w io.Writer, params *fv.Params, resp *ProgramResponse) error {
	if resp.Err != "" {
		hdr := make([]byte, 0, 1+8+1+4)
		hdr = append(hdr, statusErr)
		hdr = binary.LittleEndian.AppendUint64(hdr, resp.ID)
		hdr = append(hdr, resp.Code)
		msg := []byte(resp.Err)
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(msg)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		_, err := w.Write(msg)
		return err
	}
	if len(resp.Outputs) == 0 || len(resp.Outputs) > ProgramLimits().MaxOutputs {
		return fmt.Errorf("cloud: %d program outputs outside (0, %d]", len(resp.Outputs), ProgramLimits().MaxOutputs)
	}
	hdr := make([]byte, 0, 1+8+8+8+4+4+4)
	hdr = append(hdr, statusOK)
	hdr = binary.LittleEndian.AppendUint64(hdr, resp.ID)
	hdr = binary.LittleEndian.AppendUint64(hdr, resp.MakespanNanos)
	hdr = binary.LittleEndian.AppendUint64(hdr, resp.SerialNanos)
	hdr = binary.LittleEndian.AppendUint32(hdr, resp.KeyLoads)
	hdr = binary.LittleEndian.AppendUint32(hdr, resp.Nodes)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(resp.Outputs)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, ct := range resp.Outputs {
		if err := ct.WriteTo(w, params); err != nil {
			return err
		}
	}
	return nil
}

// ReadProgramResponse deserializes a CmdProgram reply.
func ReadProgramResponse(r io.Reader, params *fv.Params) (*ProgramResponse, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, err
	}
	resp := &ProgramResponse{}
	switch status[0] {
	case statusErr:
		var hdr [13]byte // id, code, message length
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, malformed(ErrMalformedResponse, "truncated program error header", err)
		}
		resp.ID = binary.LittleEndian.Uint64(hdr[:8])
		resp.Code = hdr[8]
		ln := binary.LittleEndian.Uint32(hdr[9:])
		if ln == 0 || ln > 1<<16 {
			return nil, fmt.Errorf("%w: implausible program error length %d", ErrMalformedResponse, ln)
		}
		msg := make([]byte, ln)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, malformed(ErrMalformedResponse, "truncated program error message", err)
		}
		resp.Err = string(msg)
		return resp, nil
	case statusOK:
	default:
		return nil, fmt.Errorf("%w: unknown status byte %d", ErrMalformedResponse, status[0])
	}
	var hdr [36]byte // id, makespan, serial, key loads, nodes, output count
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, malformed(ErrMalformedResponse, "truncated program response header", err)
	}
	resp.ID = binary.LittleEndian.Uint64(hdr[:8])
	resp.MakespanNanos = binary.LittleEndian.Uint64(hdr[8:16])
	resp.SerialNanos = binary.LittleEndian.Uint64(hdr[16:24])
	resp.KeyLoads = binary.LittleEndian.Uint32(hdr[24:28])
	resp.Nodes = binary.LittleEndian.Uint32(hdr[28:32])
	nOut := binary.LittleEndian.Uint32(hdr[32:36])
	if nOut == 0 || int64(nOut) > int64(ProgramLimits().MaxOutputs) {
		return nil, fmt.Errorf("%w: %d program outputs outside (0, %d]", ErrMalformedResponse, nOut, ProgramLimits().MaxOutputs)
	}
	resp.Outputs = make([]*fv.Ciphertext, nOut)
	for i := range resp.Outputs {
		ct, err := fv.ReadCiphertext(r, params)
		if err != nil {
			return nil, malformed(ErrMalformedResponse, fmt.Sprintf("reading program output %d", i), err)
		}
		resp.Outputs[i] = ct
	}
	return resp, nil
}

// ServerError is an error the server reported in a response — the node is
// alive and speaking the protocol; the operation itself failed.
type ServerError struct {
	Code uint8
	Msg  string
}

func (e *ServerError) Error() string { return "cloud: server error: " + e.Msg }

// Retryable reports whether the failure was node-local — unavailability
// (overload, shutdown), a detected integrity fault, or a per-tenant quota
// refusal — rather than a deterministic application error, so an idempotent
// request may be retried on a replica.
func (e *ServerError) Retryable() bool {
	return e.Code == CodeUnavailable || e.Code == CodeIntegrity || e.Code == CodeQuota
}
