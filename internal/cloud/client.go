package cloud

import (
	"fmt"
	"net"
	"time"

	"repro/internal/fv"
)

// Client is a connection to the cloud service. It is not safe for
// concurrent use; open one client per goroutine (the server multiplexes).
type Client struct {
	conn   net.Conn
	params *fv.Params
}

// Dial connects to the service.
func Dial(addr string, params *fv.Params) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, params: params}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do runs one request/response exchange.
func (c *Client) do(cmd uint8, a, b *fv.Ciphertext) (*Response, error) {
	if err := WriteRequest(c.conn, c.params, &Request{Cmd: cmd, A: a, B: b}); err != nil {
		return nil, err
	}
	resp, err := ReadResponse(c.conn, c.params)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cloud: server error: %s", resp.Err)
	}
	return resp, nil
}

// Add asks the cloud to add two ciphertexts.
func (c *Client) Add(a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.do(CmdAdd, a, b)
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// Mul asks the cloud to multiply two ciphertexts (relinearized server-side).
func (c *Client) Mul(a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.do(CmdMul, a, b)
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// Rotate asks the cloud to apply the Galois automorphism g (the server must
// hold the matching key).
func (c *Client) Rotate(a *fv.Ciphertext, g int) (*fv.Ciphertext, time.Duration, error) {
	if err := WriteRequest(c.conn, c.params, &Request{Cmd: CmdRotate, G: uint32(g), A: a}); err != nil {
		return nil, 0, err
	}
	resp, err := ReadResponse(c.conn, c.params)
	if err != nil {
		return nil, 0, err
	}
	if resp.Err != "" {
		return nil, 0, fmt.Errorf("cloud: server error: %s", resp.Err)
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// Ping verifies the service is alive.
func (c *Client) Ping() error {
	_, err := c.do(CmdPing, nil, nil)
	return err
}
