package cloud

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/ckks"
	"repro/internal/fv"
	"repro/internal/program"
)

// DialTimeout bounds connection establishment in Dial/DialTenant.
const DialTimeout = 5 * time.Second

// Client is a connection to the cloud service. It is not safe for
// concurrent use; open one client per goroutine (the server multiplexes).
type Client struct {
	conn   net.Conn
	params *fv.Params
	ckks   *ckks.Params // non-nil after EnableCKKS; required for CmdCKKS*
	ver    uint8
	tenant string
	nextID uint64
	broken bool // a transport error or cancellation desynced the stream
}

// Dial connects to the service speaking protocol v2 under the default
// tenant.
func Dial(addr string, params *fv.Params) (*Client, error) {
	return DialTenant(addr, params, "")
}

// DialTenant connects to the service speaking protocol v2; every request is
// issued under the given evaluation-key namespace.
func DialTenant(addr string, params *fv.Params, tenant string) (*Client, error) {
	if len(tenant) > MaxTenantLen {
		return nil, fmt.Errorf("cloud: tenant %q longer than %d bytes", tenant, MaxTenantLen)
	}
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, params: params, ver: ProtoV2, tenant: tenant}, nil
}

// DialV1 connects speaking the legacy v1 framing, for servers that predate
// the tenant-aware protocol. v1 has no tenant or request-ID fields; the
// server serves such clients under the default tenant.
func DialV1(addr string, params *fv.Params) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, params: params, ver: ProtoV1}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Tenant returns the namespace this client issues requests under.
func (c *Client) Tenant() string { return c.tenant }

// SetTenant changes the namespace for subsequent requests (v2 clients only;
// on a v1 client only "" is valid). Connection pools use this to reuse one
// connection across tenants.
func (c *Client) SetTenant(tenant string) error {
	if len(tenant) > MaxTenantLen {
		return fmt.Errorf("cloud: tenant %q longer than %d bytes", tenant, MaxTenantLen)
	}
	if c.ver < ProtoV2 && tenant != "" {
		return fmt.Errorf("cloud: protocol v1 cannot carry tenant %q", tenant)
	}
	c.tenant = tenant
	return nil
}

// Broken reports whether the connection's request/response stream can no
// longer be trusted (a transport error, a cancellation mid-exchange, or a
// response-ID mismatch). A broken client must be closed, not reused.
func (c *Client) Broken() bool { return c.broken }

// EnableCKKS arms the client for approximate-arithmetic commands. The params
// must match the server's (check ServerInfo.CKKS via Info first); CKKS
// commands on a client without them, or on a v1 connection, fail before
// touching the wire.
func (c *Client) EnableCKKS(p *ckks.Params) { c.ckks = p }

// watch arranges for ctx cancellation to interrupt conn I/O by slamming the
// deadline to now. The returned stop function must be called when the
// exchange ends; the per-exchange deadline reset in Do clears any deadline a
// late-firing watcher leaves behind.
func (c *Client) watch(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now())
		case <-done:
		}
	}()
	return func() { close(done) }
}

// Do runs one request/response exchange under ctx. The request's Ver, ID,
// and Tenant fields are filled in from the client (a non-empty req.Tenant
// overrides the client default). A context deadline is honored via the
// connection deadline, so a hung server cannot block the caller past it; on
// cancellation or any transport error the client is marked Broken. A
// server-reported failure is returned as *ServerError with the result
// response.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if c.broken {
		return nil, fmt.Errorf("cloud: client connection is broken")
	}
	if isCKKSCmd(req.Cmd) {
		if c.ckks == nil {
			return nil, fmt.Errorf("cloud: %s requires EnableCKKS", cmdName(req.Cmd))
		}
		if c.ver < ProtoV2 {
			return nil, fmt.Errorf("cloud: %s requires protocol v2", cmdName(req.Cmd))
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Ver = c.ver
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	if c.ver >= ProtoV2 {
		c.nextID++
		req.ID = c.nextID
	}
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	stop := c.watch(ctx)
	defer stop()

	if err := WriteRequest(c.conn, c.params, req); err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	var resp *Response
	var err error
	if isCKKSCmd(req.Cmd) {
		resp, err = ReadCKKSResponseV(c.conn, c.ckks, req.Ver)
	} else {
		resp, err = ReadResponseV(c.conn, c.params, req.Ver)
	}
	if err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	if req.Ver >= ProtoV2 && resp.ID != req.ID {
		c.broken = true
		return nil, fmt.Errorf("cloud: response ID %d for request %d (stream desync)", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return resp, &ServerError{Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}

// ctxErr prefers the context's error over the I/O error it provoked, so
// callers see context.DeadlineExceeded instead of a bare network timeout.
// The connection deadline is set to the context deadline, so the two timers
// race by a few microseconds: a network timeout at or past the context
// deadline is the context expiring even when ctx.Err() has not flipped yet.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("cloud: %w (%v)", cerr, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return fmt.Errorf("cloud: %w (%v)", context.DeadlineExceeded, err)
		}
	}
	return err
}

// AddCtx asks the cloud to add two ciphertexts, honoring ctx.
func (c *Client) AddCtx(ctx context.Context, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdAdd, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// MulCtx asks the cloud to multiply two ciphertexts (relinearized
// server-side), honoring ctx.
func (c *Client) MulCtx(ctx context.Context, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdMul, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// RotateCtx asks the cloud to apply the Galois automorphism g (the server
// must hold the matching key), honoring ctx.
func (c *Client) RotateCtx(ctx context.Context, a *fv.Ciphertext, g int) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdRotate, G: uint32(g), A: a})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// CKKSAddCtx asks the cloud to add two approximate-arithmetic ciphertexts
// (levels aligned server-side), honoring ctx. Requires EnableCKKS.
func (c *Client) CKKSAddCtx(ctx context.Context, a, b *ckks.Ciphertext) (*ckks.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdCKKSAdd, CA: a, CB: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.CKKSResult, time.Duration(resp.ComputeNanos), nil
}

// CKKSMulCtx asks the cloud to multiply two approximate-arithmetic
// ciphertexts — relinearized and rescaled server-side, so the result sits one
// level below the deeper operand. Requires EnableCKKS.
func (c *Client) CKKSMulCtx(ctx context.Context, a, b *ckks.Ciphertext) (*ckks.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdCKKSMul, CA: a, CB: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.CKKSResult, time.Duration(resp.ComputeNanos), nil
}

// CKKSRotateCtx asks the cloud to rotate the slot vector left by r (the
// server must hold the matching Galois key), honoring ctx. Requires
// EnableCKKS.
func (c *Client) CKKSRotateCtx(ctx context.Context, a *ckks.Ciphertext, r int) (*ckks.Ciphertext, time.Duration, error) {
	resp, err := c.Do(ctx, &Request{Cmd: CmdCKKSRotate, CA: a, R: int32(r)})
	if err != nil {
		return nil, 0, err
	}
	return resp.CKKSResult, time.Duration(resp.ComputeNanos), nil
}

// PingCtx verifies the service is alive, honoring ctx.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.Do(ctx, &Request{Cmd: CmdPing})
	return err
}

// Info asks a v2 server what it is: protocol version, node ID, worker count,
// and the tenants with registered evaluation keys.
func (c *Client) Info(ctx context.Context) (*ServerInfo, error) {
	if c.ver < ProtoV2 {
		return nil, fmt.Errorf("cloud: info requires protocol v2")
	}
	if c.broken {
		return nil, fmt.Errorf("cloud: client connection is broken")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	stop := c.watch(ctx)
	defer stop()
	c.nextID++
	req := &Request{Cmd: CmdInfo, Ver: c.ver, ID: c.nextID, Tenant: c.tenant}
	if err := WriteRequest(c.conn, c.params, req); err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	id, info, err := ReadInfoResponse(c.conn)
	if err != nil {
		if _, ok := err.(*ServerError); !ok {
			c.broken = true
		}
		return nil, c.ctxErr(ctx, err)
	}
	if id != req.ID {
		c.broken = true
		return nil, fmt.Errorf("cloud: info response ID %d for request %d (stream desync)", id, req.ID)
	}
	return info, nil
}

// DoProgram runs one CmdProgram exchange: the raw request (ProgBytes and
// Inputs populated) against the program response framing. Deadline,
// cancellation, and broken-stream handling match Do. A server-reported
// failure returns the response alongside a *ServerError carrying its code.
func (c *Client) DoProgram(ctx context.Context, req *Request) (*ProgramResponse, error) {
	if c.ver < ProtoV2 {
		return nil, fmt.Errorf("cloud: program requires protocol v2")
	}
	if c.broken {
		return nil, fmt.Errorf("cloud: client connection is broken")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Cmd = CmdProgram
	req.Ver = c.ver
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	c.nextID++
	req.ID = c.nextID
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	stop := c.watch(ctx)
	defer stop()

	if err := WriteRequest(c.conn, c.params, req); err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	resp, err := ReadProgramResponse(c.conn, c.params)
	if err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	if resp.ID != req.ID {
		c.broken = true
		return nil, fmt.Errorf("cloud: program response ID %d for request %d (stream desync)", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return resp, &ServerError{Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}

// RunProgram compiles nothing — it serializes an already-built program and
// submits it with its inputs as ONE round trip, returning every output. This
// is the client half of circuit-as-a-program serving: where op-at-a-time
// evaluation pays a round trip per gate, a program pays one per circuit.
func (c *Client) RunProgram(ctx context.Context, p *program.Program, inputs []*fv.Ciphertext) (*ProgramResponse, error) {
	data, err := p.EncodeBytes()
	if err != nil {
		return nil, err
	}
	return c.DoProgram(ctx, &Request{ProgBytes: data, Inputs: inputs})
}

// Add asks the cloud to add two ciphertexts.
func (c *Client) Add(a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	return c.AddCtx(context.Background(), a, b)
}

// Mul asks the cloud to multiply two ciphertexts (relinearized server-side).
func (c *Client) Mul(a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	return c.MulCtx(context.Background(), a, b)
}

// Rotate asks the cloud to apply the Galois automorphism g (the server must
// hold the matching key).
func (c *Client) Rotate(a *fv.Ciphertext, g int) (*fv.Ciphertext, time.Duration, error) {
	return c.RotateCtx(context.Background(), a, g)
}

// CKKSAdd asks the cloud to add two approximate-arithmetic ciphertexts.
func (c *Client) CKKSAdd(a, b *ckks.Ciphertext) (*ckks.Ciphertext, time.Duration, error) {
	return c.CKKSAddCtx(context.Background(), a, b)
}

// CKKSMul asks the cloud to multiply two approximate-arithmetic ciphertexts
// (relinearized and rescaled server-side).
func (c *Client) CKKSMul(a, b *ckks.Ciphertext) (*ckks.Ciphertext, time.Duration, error) {
	return c.CKKSMulCtx(context.Background(), a, b)
}

// CKKSRotate asks the cloud to rotate the slot vector left by r.
func (c *Client) CKKSRotate(a *ckks.Ciphertext, r int) (*ckks.Ciphertext, time.Duration, error) {
	return c.CKKSRotateCtx(context.Background(), a, r)
}

// Ping verifies the service is alive.
func (c *Client) Ping() error {
	return c.PingCtx(context.Background())
}
