package cloud

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/fv"
)

func TestMuxHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMuxHello(&buf, 48); err != nil {
		t.Fatal(err)
	}
	if w, err := ReadMuxHello(&buf); err != nil || w != 48 {
		t.Fatalf("hello round trip: window %d, err %v", w, err)
	}
	// Corrupted hellos are connection-fatal.
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"bad magic", []byte("HEAX\x01\x20\x00")},
		{"bad version", []byte("HEAM\x09\x20\x00")},
		{"zero window", []byte("HEAM\x01\x00\x00")},
		{"truncated", []byte("HEAM\x01")},
	} {
		if _, err := ReadMuxHello(bytes.NewReader(tc.raw)); !errors.Is(err, ErrMalformedMuxFrame) {
			t.Fatalf("%s: err %v, want ErrMalformedMuxFrame", tc.name, err)
		}
	}
	if _, err := ReadMuxHello(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err %v, want io.EOF", err)
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload does not matter to the framing layer")
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, MuxFrameRequest, 42, payload); err != nil {
		t.Fatal(err)
	}
	f, err := DecodeMuxFrame(&buf, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MuxFrameRequest || f.ID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame round trip: %+v", f)
	}
}

// TestMuxFrameCorruption pins the two blast radii: header damage is
// connection-fatal (the length cannot be trusted), payload damage is
// per-request (the ID and boundary survive).
func TestMuxFrameCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 300)
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, MuxFrameResponse, 7, payload); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := func(i int) []byte {
		raw := bytes.Clone(good)
		raw[i] ^= 0x40
		return raw
	}

	// Any header byte flipped → malformed, stream untrusted.
	for _, i := range []int{0, 4, 10, 15, 22} {
		_, err := DecodeMuxFrame(bytes.NewReader(flip(i)), 1<<16)
		if !errors.Is(err, ErrMalformedMuxFrame) {
			t.Fatalf("header byte %d flipped: err %v, want ErrMalformedMuxFrame", i, err)
		}
	}

	// A payload byte flipped → typed checksum error that still names the
	// request and consumed exactly the frame, so the stream stays in sync.
	r := bytes.NewReader(flip(muxHeaderLen + 100))
	f, err := DecodeMuxFrame(r, 1<<16)
	if !errors.Is(err, ErrMuxPayloadChecksum) {
		t.Fatalf("payload flipped: err %v, want ErrMuxPayloadChecksum", err)
	}
	if f == nil || f.ID != 7 {
		t.Fatalf("payload checksum error lost the request ID: %+v", f)
	}
	if r.Len() != 0 {
		t.Fatalf("decoder left %d bytes of the damaged frame unread", r.Len())
	}

	// Truncation inside the frame → malformed.
	for _, cut := range []int{3, muxHeaderLen, muxHeaderLen + 100} {
		_, err := DecodeMuxFrame(bytes.NewReader(good[:cut]), 1<<16)
		if !errors.Is(err, ErrMalformedMuxFrame) {
			t.Fatalf("truncated at %d: err %v, want ErrMalformedMuxFrame", cut, err)
		}
	}
	// Clean EOF between frames is a hangup, not corruption.
	if _, err := DecodeMuxFrame(bytes.NewReader(nil), 1<<16); err != io.EOF {
		t.Fatalf("empty stream: err %v, want io.EOF", err)
	}
	// A length beyond the bound is refused before allocation.
	if _, err := DecodeMuxFrame(bytes.NewReader(good), len(payload)-1); !errors.Is(err, ErrMalformedMuxFrame) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

// fakeMuxServer accepts one mux session on a pipe and hands frames to serve.
func fakeMuxServer(t *testing.T, grant int, serve func(conn net.Conn, br *bytes.Buffer)) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		if _, err := ReadMuxHello(server); err != nil {
			return
		}
		if err := WriteMuxHello(server, grant); err != nil {
			return
		}
		serve(server, nil)
	}()
	return client
}

// TestMuxOutOfOrderResponses proves interleaving: two requests in flight, the
// server answers them in reverse order, and each caller still receives the
// response carrying its own request ID.
func TestMuxOutOfOrderResponses(t *testing.T) {
	ts := newTestSystem(t)
	respFrame := func(id uint64, worker uint32) []byte {
		var buf bytes.Buffer
		resp := &Response{Ver: ProtoV2, ID: id, Result: fv.NewCiphertext(ts.params, 2), Worker: worker}
		if err := WriteResponse(&buf, ts.params, resp); err != nil {
			t.Error(err)
		}
		var frame bytes.Buffer
		if err := WriteMuxFrame(&frame, MuxFrameResponse, id, buf.Bytes()); err != nil {
			t.Error(err)
		}
		return frame.Bytes()
	}

	gotBoth := make(chan struct{})
	conn := fakeMuxServer(t, 8, func(server net.Conn, _ *bytes.Buffer) {
		defer server.Close()
		maxP := maxMuxPayload(ts.params)
		f1, err := DecodeMuxFrame(server, maxP)
		if err != nil {
			return
		}
		f2, err := DecodeMuxFrame(server, maxP)
		if err != nil {
			return
		}
		close(gotBoth)
		// Answer in reverse: the second request completes first.
		server.Write(respFrame(f2.ID, 22))
		server.Write(respFrame(f1.ID, 11))
	})
	mc, err := NewMuxClient(conn, ts.params, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	type out struct {
		worker uint32
		err    error
	}
	run := func(ch chan out) {
		resp, err := mc.Do(context.Background(), &Request{Cmd: CmdPing})
		if err != nil {
			ch <- out{err: err}
			return
		}
		ch <- out{worker: resp.Worker}
	}
	ch1, ch2 := make(chan out, 1), make(chan out, 1)
	go run(ch1)
	// The pipe is synchronous, so the first frame is fully read by the fake
	// server before the second submission writes — the IDs are ordered.
	<-time.After(10 * time.Millisecond)
	go run(ch2)
	<-gotBoth
	o1, o2 := <-ch1, <-ch2
	if o1.err != nil || o2.err != nil {
		t.Fatalf("exchanges failed: %v / %v", o1.err, o2.err)
	}
	if o1.worker != 11 || o2.worker != 22 {
		t.Fatalf("responses crossed: request 1 got worker %d, request 2 got %d (want 11/22)",
			o1.worker, o2.worker)
	}
}

// TestMuxWindowBackpressure proves the typed fail-fast: with every window
// slot occupied a new submission returns ErrWindowExhausted immediately —
// no queueing, no deadlock — and a freed slot makes the next submission work.
func TestMuxWindowBackpressure(t *testing.T) {
	ts := newTestSystem(t)
	firstSeen := make(chan uint64, 1)
	release := make(chan struct{})
	conn := fakeMuxServer(t, 1, func(server net.Conn, _ *bytes.Buffer) {
		defer server.Close()
		for {
			f, err := DecodeMuxFrame(server, maxMuxPayload(ts.params))
			if err != nil {
				return
			}
			select {
			case firstSeen <- f.ID:
				<-release // hold the first request in flight
			default:
			}
			var buf bytes.Buffer
			WriteResponse(&buf, ts.params, &Response{Ver: ProtoV2, ID: f.ID, Result: fv.NewCiphertext(ts.params, 2)})
			WriteMuxFrame(server, MuxFrameResponse, f.ID, buf.Bytes())
		}
	})
	mc, err := NewMuxClient(conn, ts.params, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if mc.Window() != 1 {
		t.Fatalf("granted window %d, want 1", mc.Window())
	}

	done := make(chan error, 1)
	go func() { done <- mc.PingCtx(context.Background()) }()
	<-firstSeen // the only window slot is now provably occupied

	if err := mc.PingCtx(context.Background()); !errors.Is(err, ErrWindowExhausted) {
		t.Fatalf("submission past the window: err %v, want ErrWindowExhausted", err)
	}
	if mc.Broken() {
		t.Fatal("window exhaustion broke the connection")
	}

	close(release) // first exchange completes, freeing the slot
	if err := <-done; err != nil {
		t.Fatalf("held exchange failed: %v", err)
	}
	if err := mc.PingCtx(context.Background()); err != nil {
		t.Fatalf("submission after the window freed: %v", err)
	}
}

// TestMuxCancellationKeepsConnection: abandoning an exchange via context must
// not poison the stream — the late response is discarded by ID and the next
// exchange proceeds. (This is the failure mode that marks a sequential
// Client Broken.)
func TestMuxCancellationKeepsConnection(t *testing.T) {
	ts := newTestSystem(t)
	seen := make(chan uint64, 4)
	release := make(chan struct{})
	conn := fakeMuxServer(t, 4, func(server net.Conn, _ *bytes.Buffer) {
		defer server.Close()
		for {
			f, err := DecodeMuxFrame(server, maxMuxPayload(ts.params))
			if err != nil {
				return
			}
			seen <- f.ID
			go func(id uint64) {
				<-release
				var buf bytes.Buffer
				WriteResponse(&buf, ts.params, &Response{Ver: ProtoV2, ID: id, Result: fv.NewCiphertext(ts.params, 2)})
				WriteMuxFrame(server, MuxFrameResponse, id, buf.Bytes())
			}(f.ID)
		}
	})
	mc, err := NewMuxClient(conn, ts.params, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mc.PingCtx(ctx) }()
	<-seen
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exchange: err %v, want context.Canceled", err)
	}
	if mc.Broken() {
		t.Fatal("cancellation broke the mux connection")
	}

	// The server now answers everything, including the abandoned ID; the
	// reader must discard that orphan and deliver the live exchange.
	close(release)
	if err := mc.PingCtx(context.Background()); err != nil {
		t.Fatalf("exchange after cancellation: %v", err)
	}
}

// TestMuxServerEndToEnd runs the real server: concurrent multiplications on
// ONE connection, each decrypting to its own product — out-of-order
// completion across the engine's workers resolves to the right request IDs.
func TestMuxServerEndToEnd(t *testing.T) {
	ts := newTestSystem(t)
	_, addr := startServer(t, ts)

	mc, err := DialMux(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if mc.Window() != DefaultMuxWindow {
		t.Fatalf("window %d, want %d", mc.Window(), DefaultMuxWindow)
	}
	if err := mc.PingCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	info, err := mc.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Proto != ProtoV2 || !info.TenantAware {
		t.Fatalf("info over mux: %+v", info)
	}

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := ts.encrypt(t, uint64(i+2))
			b := ts.encrypt(t, uint64(i+5))
			prod, hwTime, err := mc.MulCtx(context.Background(), a, b)
			if err != nil {
				errs[i] = err
				return
			}
			if hwTime <= 0 {
				errs[i] = errors.New("no simulated time reported")
				return
			}
			want := uint64((i + 2) * (i + 5) % 257)
			if got := ts.decrypt(prod); got != want {
				errs[i] = errResult{got, want}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mux exchange %d: %v", i, err)
		}
	}

	// An application error (rotation without its key) fails only its own
	// exchange; the session survives.
	ct := ts.encrypt(t, 3)
	if _, _, err := mc.RotateCtx(context.Background(), ct, 5); err == nil {
		t.Fatal("rotation with missing key should error")
	} else {
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("rotate error not a ServerError: %v", err)
		}
	}
	if err := mc.PingCtx(context.Background()); err != nil {
		t.Fatalf("session broken after error response: %v", err)
	}
}

// TestMuxGarbledFrameIsolated is the fault-injection half of the protocol
// contract: one frame garbled in flight (through the chaos proxy) must fail
// exactly the request it carried — typed, retryable — while the exchanges
// before and after it on the same connection succeed.
func TestMuxGarbledFrameIsolated(t *testing.T) {
	ts := newTestSystem(t)
	_, addr := startServer(t, ts)

	inj := faults.New(4242)
	proxy, err := faults.NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	mc, err := DialMux(proxy.Addr(), ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	mul := func(x, y uint64) (uint64, error) {
		prod, _, err := mc.MulCtx(context.Background(), ts.encrypt(t, x), ts.encrypt(t, y))
		if err != nil {
			return 0, err
		}
		return ts.decrypt(prod), nil
	}

	// A clean exchange first, so the fault can be aimed past the hellos.
	if got, err := mul(3, 4); err != nil || got != 12 {
		t.Fatalf("pre-fault mul: %d, %v", got, err)
	}

	// Arm one garble a few chunks into the NEXT request's upload: a Mul
	// request is ~50 proxy chunks of ciphertext, so chunk seen+3 is deep in
	// the frame payload, far past the 25-byte header.
	seen := inj.Stats().Seen["frame"]
	inj.Arm(faults.Spec{Class: faults.ClassFrame, After: seen + 3, Mode: faults.ModeGarble})

	_, err = mul(5, 6)
	if err == nil {
		t.Fatal("garbled frame delivered a result")
	}
	if inj.Stats().TotalFired != 1 {
		t.Fatalf("fault did not fire: %+v", inj.Stats())
	}
	// Either side may catch it: the server answers with a retryable typed
	// error (upload garbled), or the client's decoder rejects the payload
	// (download garbled). Both are per-request verdicts.
	var se *ServerError
	switch {
	case errors.As(err, &se):
		if !se.Retryable() {
			t.Fatalf("garbled-frame ServerError not retryable: %v", se)
		}
	case errors.Is(err, ErrMuxPayloadChecksum) || errors.Is(err, ErrMalformedResponse):
		// client-side detection
	default:
		t.Fatalf("garbled frame surfaced untyped: %v", err)
	}
	if mc.Broken() {
		t.Fatal("one garbled frame killed the whole connection")
	}

	// The same connection keeps serving.
	if got, err := mul(7, 8); err != nil || got != 56 {
		t.Fatalf("post-fault mul on the same connection: %d, %v", got, err)
	}
}
