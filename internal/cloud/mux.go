package cloud

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/fv"
)

// Connection multiplexing ("HEAM"). The v1/v2 framings are strictly
// request/response: one exchange in flight per connection, so a slow
// multiplication blocks every request queued behind it on that socket, and
// the only way to add concurrency is to open more connections. The mux mode
// keeps the v2 payload encodings unchanged but wraps each one in a tagged
// frame, so one connection carries many in-flight request IDs and the server
// completes them out of order as workers finish.
//
// # Session layout
//
//	client hello:  "HEAM", version byte, requested window (uint16 LE)
//	server hello:  "HEAM", version byte, granted window (uint16 LE)
//	then frames both ways, each:
//
//	  type (1) | request ID (8 LE) | payload len (4 LE) |
//	  payload FNV-64a (8 LE) | header FNV-32a (4 LE) | payload
//
// The payload is a complete v2 frame (request, response, info response, or
// program response), decoded by the same hardened length-bounded decoders the
// sequential protocol uses — the mux layer adds tagging and integrity, not a
// second payload codec.
//
// # Flow control
//
// The granted window bounds the number of unanswered request IDs per
// connection. The client enforces it without blocking: a submission past the
// window fails fast with ErrWindowExhausted (typed backpressure the caller
// can react to — spill to another connection, queue, or shed), never a
// deadlock. The server independently bounds its concurrent dispatches to the
// same window, so a client that ignores its side cannot fan one socket out
// into unbounded engine work.
//
// # Fault isolation
//
// The two checksums split corruption into two blast radii. A header that
// fails its checksum leaves the frame length untrusted, so the stream cannot
// be resynchronized: that error (ErrMalformedMuxFrame) is connection-fatal.
// A payload that fails its checksum under an intact header is skippable —
// the reader knows exactly how many bytes to discard and which request ID
// they belonged to — so exactly that request fails with a retryable
// ErrMuxPayloadChecksum and every other in-flight exchange proceeds.
const (
	// MuxProtoVersion is the mux session version negotiated in the hello.
	MuxProtoVersion uint8 = 1
	// DefaultMuxWindow is the in-flight request window a client asks for.
	DefaultMuxWindow = 32
	// MaxMuxWindow caps what a server grants, whatever the client requests.
	MaxMuxWindow = 256
)

// muxMagic opens a multiplexed session; it shares the port with "HEAT"/"HEA2"
// and is told apart by the first four bytes.
var muxMagic = [4]byte{'H', 'E', 'A', 'M'}

// Mux frame types.
const (
	// MuxFrameRequest carries an encoded v2 request (client to server).
	MuxFrameRequest uint8 = 1
	// MuxFrameResponse carries an encoded v2 response of whichever framing
	// the request's command answers with (server to client).
	MuxFrameResponse uint8 = 2
)

// Typed mux errors.
var (
	// ErrMalformedMuxFrame marks a structurally broken mux frame or hello:
	// bad magic, bad version, an impossible length, an unknown frame type, a
	// header checksum mismatch, or truncation inside a frame. The stream
	// cannot be trusted past it; the connection must be dropped.
	ErrMalformedMuxFrame = errors.New("cloud: malformed mux frame")
	// ErrMuxPayloadChecksum marks a frame whose header was intact but whose
	// payload failed its checksum. Only the request ID carried by that frame
	// is affected; the connection stays usable. The exchange is retryable:
	// corruption in flight means the payload was never acted on.
	ErrMuxPayloadChecksum = errors.New("cloud: mux payload checksum mismatch")
	// ErrWindowExhausted is the client-side backpressure signal: every slot
	// of the negotiated in-flight window is occupied. The submission was not
	// sent; retry after an in-flight exchange completes, or use another
	// connection.
	ErrWindowExhausted = errors.New("cloud: mux window exhausted")
)

// muxHeaderLen is the fixed frame header size:
// type(1) + id(8) + len(4) + payload checksum(8) + header checksum(4).
const muxHeaderLen = 1 + 8 + 4 + 8 + 4

// muxHelloLen is the hello size either way: magic(4) + version(1) + window(2).
const muxHelloLen = 4 + 1 + 2

// MuxFrame is one decoded mux frame.
type MuxFrame struct {
	Type    uint8
	ID      uint64
	Payload []byte
}

func fnv64a(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

func fnv32a(p []byte) uint32 {
	h := fnv.New32a()
	h.Write(p)
	return h.Sum32()
}

// WriteMuxHello writes one hello (client request or server grant).
func WriteMuxHello(w io.Writer, window int) error {
	if window < 1 || window > int(^uint16(0)) {
		return fmt.Errorf("cloud: mux window %d outside [1, %d]", window, ^uint16(0))
	}
	var buf [muxHelloLen]byte
	copy(buf[:4], muxMagic[:])
	buf[4] = MuxProtoVersion
	binary.LittleEndian.PutUint16(buf[5:7], uint16(window))
	_, err := w.Write(buf[:])
	return err
}

// ReadMuxHello reads and validates one hello, returning the window it
// carries. A clean EOF before any byte surfaces as io.EOF; anything broken
// after that wraps ErrMalformedMuxFrame.
func ReadMuxHello(r io.Reader) (int, error) {
	var buf [muxHelloLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, malformed(ErrMalformedMuxFrame, "truncated hello", err)
	}
	if [4]byte(buf[:4]) != muxMagic {
		return 0, fmt.Errorf("%w: bad hello magic %q", ErrMalformedMuxFrame, buf[:4])
	}
	if buf[4] != MuxProtoVersion {
		return 0, fmt.Errorf("%w: unsupported mux version %d", ErrMalformedMuxFrame, buf[4])
	}
	window := int(binary.LittleEndian.Uint16(buf[5:7]))
	if window < 1 {
		return 0, fmt.Errorf("%w: zero window", ErrMalformedMuxFrame)
	}
	return window, nil
}

// WriteMuxFrame frames payload under (typ, id) with both checksums and writes
// it. The caller serializes concurrent writers.
func WriteMuxFrame(w io.Writer, typ uint8, id uint64, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("cloud: empty mux payload")
	}
	var hdr [muxHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:9], id)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[13:21], fnv64a(payload))
	binary.LittleEndian.PutUint32(hdr[21:25], fnv32a(hdr[:21]))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeMuxFrame reads one frame, bounding the payload at maxPayload bytes.
//
// Error contract, in decreasing blast radius:
//   - io.EOF: the peer hung up cleanly between frames.
//   - wraps ErrMalformedMuxFrame: the stream is unrecoverable (untrusted
//     length); drop the connection. Truncation inside a frame reports
//     io.ErrUnexpectedEOF wrapped under the same sentinel.
//   - wraps ErrMuxPayloadChecksum: the frame is returned WITH its ID and
//     consumed payload so the caller can fail exactly that request and keep
//     reading; the next frame boundary is intact.
func DecodeMuxFrame(r io.Reader, maxPayload int) (*MuxFrame, error) {
	var hdr [muxHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, malformed(ErrMalformedMuxFrame, "truncated frame header", err)
	}
	if got, want := fnv32a(hdr[:21]), binary.LittleEndian.Uint32(hdr[21:25]); got != want {
		return nil, fmt.Errorf("%w: header checksum %#x, want %#x", ErrMalformedMuxFrame, got, want)
	}
	f := &MuxFrame{Type: hdr[0], ID: binary.LittleEndian.Uint64(hdr[1:9])}
	if f.Type != MuxFrameRequest && f.Type != MuxFrameResponse {
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrMalformedMuxFrame, f.Type)
	}
	ln := int(binary.LittleEndian.Uint32(hdr[9:13]))
	if ln < 1 || ln > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d outside [1, %d]", ErrMalformedMuxFrame, ln, maxPayload)
	}
	f.Payload = make([]byte, ln)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, malformed(ErrMalformedMuxFrame, "truncated frame payload", err)
	}
	if got, want := fnv64a(f.Payload), binary.LittleEndian.Uint64(hdr[13:21]); got != want {
		return f, fmt.Errorf("%w: request %d: payload checksum %#x, want %#x",
			ErrMuxPayloadChecksum, f.ID, got, want)
	}
	return f, nil
}

// maxMuxPayload is the bound DecodeMuxFrame enforces on both sides: the
// largest legal payload either direction is a CmdProgram request, and every
// response framing is smaller than its request's upper bound plus the info
// response ceiling.
func maxMuxPayload(params *fv.Params) int {
	n := MaxProgramRequestBytes(params)
	if m := maxInfoBytes + 64; m > n {
		n = m
	}
	return n
}
