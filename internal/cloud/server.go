package cloud

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fv"
)

// Server is the cloud service: a listener (the "Networking Arm Core" of
// Fig. 11) distributing requests to application workers, each owning one
// simulated co-processor. The relinearization key is installed server-side,
// as in any FV cloud deployment — the client never sends secret material.
type Server struct {
	Params *fv.Params
	Accel  *core.Accelerator
	RK     *fv.RelinKey
	Logger *log.Logger

	ln      net.Listener
	mu      sync.Mutex
	served  uint64
	closing bool
	wg      sync.WaitGroup
	galois  map[int]*fv.GaloisKey
}

// SetGaloisKey installs the key-switching key for one Galois element,
// enabling CmdRotate requests with that element (clients upload their
// rotation keys ahead of time, like relin keys).
func (s *Server) SetGaloisKey(gk *fv.GaloisKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.galois == nil {
		s.galois = map[int]*fv.GaloisKey{}
	}
	s.galois[gk.G] = gk
}

// NewServer prepares a server around an accelerator and relin key.
func NewServer(params *fv.Params, accel *core.Accelerator, rk *fv.RelinKey, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{Params: params, Accel: accel, RK: rk, Logger: logger}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Listen binds the address and returns the bound address (useful with
// ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close. Each connection is handled by a
// goroutine; operations inside a connection dispatch round-robin onto the
// co-processors (the Accelerator serializes access per co-processor).
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("cloud: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Served returns the number of operations completed.
func (s *Server) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := ReadRequest(conn, s.Params)
		if err != nil {
			return // client closed or spoke garbage; drop the connection
		}
		resp := s.process(req)
		if err := WriteResponse(conn, s.Params, resp); err != nil {
			s.Logger.Printf("cloud: write response: %v", err)
			return
		}
	}
}

func (s *Server) process(req *Request) *Response {
	start := time.Now()
	var (
		ct  *fv.Ciphertext
		rep core.Report
		err error
	)
	switch req.Cmd {
	case CmdPing:
		return &Response{Result: fv.NewCiphertext(s.Params, 2)}
	case CmdAdd:
		ct, rep, err = s.Accel.Add(req.A, req.B)
	case CmdMul:
		ct, rep, err = s.Accel.Mul(req.A, req.B, s.RK)
	case CmdRotate:
		s.mu.Lock()
		gk := s.galois[int(req.G)]
		s.mu.Unlock()
		if gk == nil {
			err = fmt.Errorf("no Galois key installed for element %d", req.G)
		} else {
			ct, rep, err = s.Accel.Rotate(req.A, gk)
		}
	default:
		err = fmt.Errorf("unknown command %d", req.Cmd)
	}
	if err != nil {
		return &Response{Err: err.Error()}
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	s.Logger.Printf("cloud: cmd %d served in %v (simulated HW %.3f ms)",
		req.Cmd, time.Since(start), rep.ComputeSeconds()*1e3)
	return &Response{
		Result:       ct,
		ComputeNanos: uint64(rep.ComputeSeconds() * 1e9),
	}
}
