package cloud

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/ckks"
	"repro/internal/engine"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/program"
)

// DefaultTenant is the engine key namespace v1 requests (and v2 requests
// with an empty tenant field) are served under.
const DefaultTenant = ""

// DefaultReadTimeout bounds how long the server waits for one complete
// request (idle time between requests included). A client that stalls
// mid-message — accidentally or as a slow-loris — is disconnected instead
// of pinning a handler goroutine forever.
const DefaultReadTimeout = 2 * time.Minute

// Server is the cloud service: a listener (the "Networking Arm Core" of
// Fig. 11) admitting requests into the serving engine, which batches them
// onto a pool of application workers, each owning one simulated
// co-processor. The relinearization key is installed engine-side, as in any
// FV cloud deployment — the client never sends secret material.
type Server struct {
	Params *fv.Params
	// CKKSParams, when non-nil, enables the CmdCKKS* commands (the engine
	// must be built with the same Config.CKKSParams). Set before Serve.
	CKKSParams *ckks.Params
	Engine     *engine.Engine
	Logger     *log.Logger
	// ReadTimeout overrides DefaultReadTimeout when positive.
	ReadTimeout time.Duration
	// NodeID names this node in CmdInfo replies and cluster membership; set
	// it before Serve.
	NodeID string

	ln      net.Listener
	mu      sync.Mutex
	served  uint64
	closing bool
	conns   map[net.Conn]struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
}

// NewServer prepares a server in front of a serving engine. Evaluation keys
// are registered on the engine (SetGaloisKey below, engine.SetRelinKey for
// the relinearization key) under DefaultTenant.
func NewServer(params *fv.Params, eng *engine.Engine, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{
		Params: params,
		Engine: eng,
		Logger: logger,
		conns:  make(map[net.Conn]struct{}),
		quit:   make(chan struct{}),
	}
}

// SetGaloisKey installs the key-switching key for one Galois element,
// enabling CmdRotate requests with that element (clients upload their
// rotation keys ahead of time, like relin keys).
func (s *Server) SetGaloisKey(gk *fv.GaloisKey) {
	s.Engine.SetGaloisKey(DefaultTenant, gk)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Listen binds the address and returns the bound address (useful with
// ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close/Shutdown. Each connection gets a
// reader goroutine, but the homomorphic work itself is admitted into the
// engine's bounded queue — an overloaded engine rejects instead of piling
// up unbounded per-connection work.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("cloud: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown gracefully drains the server: it stops accepting, lets every
// in-flight request finish (through the engine) and its response flush, and
// unblocks idle connection readers. It returns nil once all connection
// handlers have exited, or ctx.Err() if the context expires first.
//
// The engine itself is left running — it belongs to the caller, which may
// be sharing it; call Engine.Shutdown separately to drain the workers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.quit)
		// Unblock handlers parked in ReadRequest. A handler that is busy
		// processing finishes its request and writes the response first;
		// it observes quit on its next loop.
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
	}
	ln := s.ln
	s.mu.Unlock()
	if ln != nil && !already {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting and drains in-flight connections with a 5-second
// grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Served returns the number of operations completed.
func (s *Server) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	timeout := s.ReadTimeout
	if timeout <= 0 {
		timeout = DefaultReadTimeout
	}
	// Peek the first four bytes to tell a multiplexed session ("HEAM") from
	// the sequential framings ("HEAT"/"HEA2"); the sequential loop reads
	// through the same buffered reader, so the peeked bytes are not lost.
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(timeout))
	magic, err := br.Peek(4)
	if err != nil {
		return
	}
	if [4]byte(magic) == muxMagic {
		s.serveMux(conn, br, timeout)
		return
	}
	for {
		// Deadline first, then the quit check: if Shutdown runs between the
		// two, its SetReadDeadline(now) lands after ours and still wins.
		conn.SetReadDeadline(time.Now().Add(timeout))
		select {
		case <-s.quit:
			return
		default:
		}
		req, err := ReadRequestCKKS(br, s.Params, s.CKKSParams)
		if err != nil {
			return // client closed, stalled past the deadline, or spoke garbage
		}
		if req.Cmd == CmdInfo {
			if err := WriteInfoResponse(conn, req.ID, s.info()); err != nil {
				s.Logger.Printf("cloud: write info response: %v", err)
				return
			}
			continue
		}
		if req.Cmd == CmdProgram {
			if err := WriteProgramResponse(conn, s.Params, s.processProgram(req)); err != nil {
				s.Logger.Printf("cloud: write program response: %v", err)
				return
			}
			continue
		}
		if req.Cmd == CmdKeyExport || req.Cmd == CmdKeyImport || req.Cmd == CmdAdmin {
			if err := s.writeMigrate(conn, req); err != nil {
				s.Logger.Printf("cloud: write %s response: %v", cmdName(req.Cmd), err)
				return
			}
			continue
		}
		resp := s.process(req)
		if err := WriteResponse(conn, s.Params, resp); err != nil {
			s.Logger.Printf("cloud: write response: %v", err)
			return
		}
	}
}

// serveMux runs one multiplexed session. Frames are read sequentially but
// dispatched concurrently: up to the granted window of requests execute in
// the engine at once, and each response frame goes out as its work finishes
// — completion order, not arrival order. When every window slot is occupied
// the reader itself blocks, so a client that overruns its window is paced by
// the transport rather than fanning one socket into unbounded engine work.
func (s *Server) serveMux(conn net.Conn, br *bufio.Reader, timeout time.Duration) {
	window, err := ReadMuxHello(br)
	if err != nil {
		return
	}
	if window > MaxMuxWindow {
		window = MaxMuxWindow
	}
	if err := WriteMuxHello(conn, window); err != nil {
		return
	}

	var wmu sync.Mutex // serializes response frames across dispatch goroutines
	writeFrame := func(id uint64, payload []byte) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := WriteMuxFrame(conn, MuxFrameResponse, id, payload); err != nil {
			s.Logger.Printf("cloud: mux write response: %v", err)
			conn.Close() // fail the session; the read loop sees the close
		}
	}
	// errFrame answers one request ID with a typed v2 error response.
	errFrame := func(id uint64, code uint8, msg string) bool {
		var buf bytes.Buffer
		resp := &Response{Ver: ProtoV2, ID: id, Err: msg, Code: code}
		if err := WriteResponse(&buf, s.Params, resp); err != nil {
			return false
		}
		writeFrame(id, buf.Bytes())
		return true
	}

	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	defer wg.Wait() // flush in-flight dispatches before the conn closes
	maxPayload := maxMuxPayload(s.Params)
	if s.CKKSParams != nil {
		if cl := MaxCKKSRequestBytes(s.CKKSParams) + 64; cl > maxPayload {
			maxPayload = cl
		}
	}

	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		select {
		case <-s.quit:
			return
		default:
		}
		f, err := DecodeMuxFrame(br, maxPayload)
		if errors.Is(err, ErrMuxPayloadChecksum) {
			// The frame boundary held: fail exactly this request, retryably
			// (the payload was never decoded, so nothing executed), and keep
			// serving the session.
			if !errFrame(f.ID, CodeUnavailable, err.Error()) {
				return
			}
			continue
		}
		if err != nil {
			return // clean close, stall past the deadline, or stream garbage
		}
		if f.Type != MuxFrameRequest {
			s.Logger.Printf("cloud: mux client sent frame type %d", f.Type)
			return
		}
		req, err := ReadRequestCKKS(bytes.NewReader(f.Payload), s.Params, s.CKKSParams)
		if err != nil {
			// The checksum matched, so this is the client's encoder speaking
			// garbage — deterministic, not retryable.
			if !errFrame(f.ID, CodeApp, err.Error()) {
				return
			}
			continue
		}
		if req.Ver < ProtoV2 || req.ID != f.ID {
			if !errFrame(f.ID, CodeApp, "mux payload must be a v2 request with the frame's ID") {
				return
			}
			continue
		}
		sem <- struct{}{} // window full ⇒ pace the reader
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			var buf bytes.Buffer
			var werr error
			switch req.Cmd {
			case CmdInfo:
				werr = WriteInfoResponse(&buf, req.ID, s.info())
			case CmdProgram:
				werr = WriteProgramResponse(&buf, s.Params, s.processProgram(req))
			case CmdKeyExport, CmdKeyImport, CmdAdmin:
				werr = s.writeMigrate(&buf, req)
			default:
				werr = WriteResponse(&buf, s.Params, s.process(req))
			}
			if werr != nil {
				s.Logger.Printf("cloud: mux encode response: %v", werr)
				conn.Close()
				return
			}
			writeFrame(req.ID, buf.Bytes())
		}()
	}
}

// info builds the CmdInfo capability advertisement.
func (s *Server) info() *ServerInfo {
	return &ServerInfo{
		Proto:       ProtoV2,
		NodeID:      s.NodeID,
		Workers:     s.Engine.Workers(),
		TenantAware: true,
		CKKS:        s.CKKSParams != nil,
		Tenants:     s.Engine.Tenants(),
	}
}

func (s *Server) process(req *Request) *Response {
	start := time.Now()
	resp := &Response{Ver: req.Ver, ID: req.ID}
	if req.Cmd == CmdPing {
		resp.Result = fv.NewCiphertext(s.Params, 2)
		return resp
	}
	op := engine.Op{Tenant: req.Tenant, A: req.A, B: req.B}
	switch req.Cmd {
	case CmdAdd:
		op.Kind = engine.OpAdd
	case CmdMul:
		op.Kind = engine.OpMul
	case CmdRotate:
		op.Kind = engine.OpRotate
		op.G = int(req.G)
	case CmdCKKSAdd:
		op.Kind = engine.OpCKKSAdd
		op.CA, op.CB = req.CA, req.CB
	case CmdCKKSMul:
		op.Kind = engine.OpCKKSMul
		op.CA, op.CB = req.CA, req.CB
	case CmdCKKSRotate:
		op.Kind = engine.OpCKKSRotate
		op.CA = req.CA
		op.R = int(req.R)
	default:
		resp.Err = fmt.Sprintf("unknown command %d", req.Cmd)
		return resp
	}
	res, err := s.Engine.Submit(context.Background(), op)
	if err != nil {
		resp.Err = err.Error()
		resp.Code = errCode(err)
		return resp
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	s.Logger.Printf("cloud: cmd %d tenant %q served in %v by worker %d (batch %d, simulated HW %.3f ms)",
		req.Cmd, req.Tenant, time.Since(start), res.Worker, res.Batch, res.Report.ComputeSeconds()*1e3)
	resp.Result = res.Ct
	resp.CKKSResult = res.CCt
	resp.ComputeNanos = uint64(res.Report.ComputeSeconds() * 1e9)
	resp.Worker = uint32(res.Worker)
	return resp
}

// processProgram decodes and schedules one CmdProgram request. Decoding
// happens here — after the frame was accepted — so a structurally broken or
// checksum-failing program turns into a typed error response (CodeApp) on a
// connection that stays usable, instead of a dropped connection.
func (s *Server) processProgram(req *Request) *ProgramResponse {
	start := time.Now()
	resp := &ProgramResponse{ID: req.ID}
	p, err := program.DecodeBytes(req.ProgBytes, ProgramLimits())
	if err != nil {
		resp.Err = err.Error()
		resp.Code = CodeApp
		return resp
	}
	res, err := s.Engine.SubmitProgram(context.Background(), engine.ProgramOp{
		Tenant: req.Tenant,
		Prog:   p,
		Inputs: req.Inputs,
	})
	if err != nil {
		resp.Err = err.Error()
		resp.Code = errCode(err)
		return resp
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	s.Logger.Printf("cloud: program tenant %q: %d nodes served in %v (simulated makespan %.3f ms on %d workers, %d key loads)",
		req.Tenant, res.Nodes, time.Since(start), res.MakespanCycles.Seconds()*1e3, res.Workers, res.KeyLoads)
	resp.Outputs = res.Outputs
	resp.MakespanNanos = uint64(res.MakespanCycles.Seconds() * 1e9)
	resp.SerialNanos = uint64(res.SerialCycles.Seconds() * 1e9)
	resp.KeyLoads = uint32(res.KeyLoads)
	resp.Nodes = uint32(res.Nodes)
	return resp
}

// writeMigrate serves the key-migration commands against the engine's key
// store and refuses CmdAdmin — membership control belongs to the routing
// tier, and a data node answering it would split the ring's brain.
func (s *Server) writeMigrate(w io.Writer, req *Request) error {
	switch req.Cmd {
	case CmdKeyExport:
		ks := s.Engine.ExportTenantKeys(req.Tenant)
		if ks.Empty() {
			return WriteBlobError(w, req.ID, CodeApp, fmt.Sprintf("no evaluation keys for tenant %q", req.Tenant))
		}
		blob, err := EncodeTenantKeys(s.Params, s.CKKSParams, ks)
		if err != nil {
			return WriteBlobError(w, req.ID, CodeApp, err.Error())
		}
		s.Logger.Printf("cloud: exported %d keys for tenant %q (%d bytes)", ks.Count(), req.Tenant, len(blob))
		return WriteBlobResponse(w, req.ID, blob)
	case CmdKeyImport:
		ks, err := DecodeTenantKeys(req.Blob, s.Params, s.CKKSParams)
		if err != nil {
			return WriteBlobError(w, req.ID, CodeApp, err.Error())
		}
		s.Engine.ImportTenantKeys(req.Tenant, ks)
		s.Logger.Printf("cloud: imported %d keys for tenant %q", ks.Count(), req.Tenant)
		body, err := json.Marshal(&ImportAck{Tenant: req.Tenant, Keys: ks.Count()})
		if err != nil {
			return WriteBlobError(w, req.ID, CodeApp, err.Error())
		}
		return WriteBlobResponse(w, req.ID, body)
	default: // CmdAdmin
		return WriteBlobError(w, req.ID, CodeApp, "admin: this node is not a routing tier")
	}
}

// errCode maps an engine error to a wire error code: lifecycle and capacity
// failures are retryable on a replica (the op never executed); a detected
// integrity fault is node-local corruption, retryable elsewhere; everything
// else — a missing key, a malformed operand, a noise-budget refusal — is
// deterministic.
func errCode(err error) uint8 {
	if errors.Is(err, engine.ErrOverloaded) ||
		errors.Is(err, engine.ErrShutdown) ||
		errors.Is(err, engine.ErrDeadlineExceeded) {
		return CodeUnavailable
	}
	if errors.Is(err, hwsim.ErrIntegrity) {
		return CodeIntegrity
	}
	if errors.Is(err, engine.ErrQuotaExceeded) {
		return CodeQuota
	}
	return CodeApp
}
