package cloud

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestRequestResponseRoundTripV2(t *testing.T) {
	ts := newTestSystem(t)
	a := ts.encrypt(t, 5)
	b := ts.encrypt(t, 6)

	var buf bytes.Buffer
	in := &Request{Cmd: CmdMul, Ver: ProtoV2, ID: 0xdeadbeefcafe, Tenant: "alice", A: a, B: b}
	if err := WriteRequest(&buf, ts.params, in); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(&buf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if req.Ver != ProtoV2 || req.ID != in.ID || req.Tenant != "alice" || req.Cmd != CmdMul {
		t.Fatalf("v2 header did not round trip: %+v", req)
	}
	if !req.A.Equal(a) || !req.B.Equal(b) {
		t.Fatal("v2 payload did not round trip")
	}

	// v2 OK response echoes the request ID.
	buf.Reset()
	if err := WriteResponse(&buf, ts.params, &Response{Ver: ProtoV2, ID: 7, Result: a, ComputeNanos: 42}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponseV(&buf, ts.params, ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || !got.Result.Equal(a) || got.ComputeNanos != 42 {
		t.Fatalf("v2 response round trip: %+v", got)
	}

	// v2 error response carries ID and error code.
	buf.Reset()
	if err := WriteResponse(&buf, ts.params, &Response{Ver: ProtoV2, ID: 9, Err: "boom", Code: CodeUnavailable}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadResponseV(&buf, ts.params, ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Err != "boom" || got.Code != CodeUnavailable {
		t.Fatalf("v2 error response round trip: %+v", got)
	}
}

func TestV2RequestValidation(t *testing.T) {
	ts := newTestSystem(t)
	// Oversized tenant refused at write time.
	long := strings.Repeat("x", MaxTenantLen+1)
	var buf bytes.Buffer
	if err := WriteRequest(&buf, ts.params, &Request{Cmd: CmdPing, Ver: ProtoV2, Tenant: long}); err == nil {
		t.Fatal("oversized tenant serialized")
	}
	// Unknown future version refused at read time.
	buf.Reset()
	buf.Write(protocolMagicV2[:])
	buf.WriteByte(9) // version from the future
	buf.WriteByte(CmdPing)
	buf.Write(make([]byte, 8+1))
	if _, err := ReadRequest(&buf, ts.params); err == nil {
		t.Fatal("unknown protocol version accepted")
	}
	// CmdInfo is v2-only.
	buf.Reset()
	buf.Write(protocolMagic[:])
	buf.WriteByte(CmdInfo)
	if _, err := ReadRequest(&buf, ts.params); err == nil {
		t.Fatal("v1 info request accepted")
	}
}

// TestServerTenantRouting: a v2 client's tenant selects the evaluation-key
// namespace; a tenant without keys gets a deterministic (non-retryable)
// application error, and the error code survives the wire.
func TestServerTenantRouting(t *testing.T) {
	ts := newTestSystem(t)
	ts.eng.SetRelinKey("alice", ts.rk)
	_, addr := startServer(t, ts)

	a, b := ts.encrypt(t, 9), ts.encrypt(t, 13)

	alice, err := DialTenant(addr, ts.params, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	prod, _, err := alice.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.decrypt(prod); got != 117 {
		t.Fatalf("9*13 = %d under tenant alice", got)
	}

	mallory, err := DialTenant(addr, ts.params, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	defer mallory.Close()
	_, _, err = mallory.Mul(a, b)
	if err == nil {
		t.Fatal("mul for a tenant without keys succeeded")
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a ServerError: %v", err, err)
	}
	if se.Retryable() {
		t.Fatalf("missing evaluation key classified retryable: %+v", se)
	}
	// The connection survives the application error.
	if err := mallory.Ping(); err != nil {
		t.Fatalf("connection broken after tenant error: %v", err)
	}
}

func TestServerInfo(t *testing.T) {
	ts := newTestSystem(t)
	ts.eng.SetRelinKey("alice", ts.rk)
	srv := NewServer(ts.params, ts.eng, nil)
	srv.NodeID = "node-under-test"
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("server exited with %v", err)
		}
	})

	client, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	info, err := client.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Proto != ProtoV2 || !info.TenantAware || info.NodeID != "node-under-test" {
		t.Fatalf("info = %+v", info)
	}
	if info.Workers != 2 {
		t.Fatalf("info.Workers = %d, want 2", info.Workers)
	}
	found := false
	for _, tn := range info.Tenants {
		if tn == "alice" {
			found = true
		}
	}
	if !found {
		t.Fatalf("info.Tenants %v misses alice", info.Tenants)
	}
	// Interleaving info with compute ops must keep the stream in sync.
	a, b := ts.encrypt(t, 2), ts.encrypt(t, 3)
	if _, _, err := client.Add(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Info(context.Background()); err != nil {
		t.Fatal(err)
	}
	if client.Broken() {
		t.Fatal("stream desynced by info exchange")
	}
}

// TestClientContextDeadline: a context deadline must bound the exchange even
// when the server accepts the connection and then never answers — the old
// client would block in Read forever.
func TestClientContextDeadline(t *testing.T) {
	ts := newTestSystem(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hung := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			hung <- conn // hold it open, read nothing, answer nothing
		}
	}()
	t.Cleanup(func() {
		select {
		case c := <-hung:
			c.Close()
		default:
		}
	})

	client, err := Dial(ln.Addr().String(), ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	a, b := ts.encrypt(t, 2), ts.encrypt(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = client.AddCtx(ctx, a, b)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange against a hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not surface the context deadline", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline of 100ms honored only after %v", elapsed)
	}
	if !client.Broken() {
		t.Fatal("client not marked broken after a cancelled exchange")
	}
	// A broken client refuses further use instead of desyncing.
	if _, _, err := client.Add(a, b); err == nil {
		t.Fatal("broken client accepted another exchange")
	}
}

// TestClientContextCancel: cancellation (not just deadlines) interrupts an
// in-flight exchange promptly via the deadline watcher.
func TestClientContextCancel(t *testing.T) {
	ts := newTestSystem(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	client, err := Dial(ln.Addr().String(), ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = client.PingCtx(ctx)
	if err == nil {
		t.Fatal("ping against a mute server succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not surface the cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation honored only after %v", elapsed)
	}
}

// TestV1Compatibility: a legacy client on the v1 framing keeps working
// against the upgraded server, served under the default tenant.
func TestV1Compatibility(t *testing.T) {
	ts := newTestSystem(t)
	_, addr := startServer(t, ts)

	client, err := DialV1(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	a, b := ts.encrypt(t, 9), ts.encrypt(t, 13)
	prod, _, err := client.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.decrypt(prod); got != 117 {
		t.Fatalf("9*13 = %d on protocol v1", got)
	}
	// v1 cannot carry a tenant.
	if err := client.SetTenant("alice"); err == nil {
		t.Fatal("v1 client accepted a tenant")
	}
	if _, err := client.Info(context.Background()); err == nil {
		t.Fatal("v1 client served an info request")
	}
}
