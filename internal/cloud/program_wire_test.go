package cloud

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/fv"
	"repro/internal/program"
)

// buildTestProgram compiles (a·b) + a — one mul wavefront, one add.
func buildTestProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	b.Output(b.Add(b.Mul(x, y), x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramRequestRoundTrip(t *testing.T) {
	ts := newTestSystem(t)
	p := buildTestProgram(t)
	data, err := p.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{
		Cmd: CmdProgram, Ver: ProtoV2, ID: 42, Tenant: "acme",
		ProgBytes: data,
		Inputs:    []*fv.Ciphertext{ts.encrypt(t, 3), ts.encrypt(t, 5)},
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, ts.params, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != CmdProgram || got.ID != 42 || got.Tenant != "acme" {
		t.Fatalf("header fields changed: %+v", got)
	}
	if !bytes.Equal(got.ProgBytes, data) {
		t.Fatal("program bytes changed in transit")
	}
	if len(got.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2", len(got.Inputs))
	}
	// The shipped bytes must decode to a program with the same checksum.
	q, err := program.DecodeBytes(got.ProgBytes, ProgramLimits())
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := p.Checksum()
	s2, _ := q.Checksum()
	if s1 != s2 {
		t.Fatal("checksum changed in transit")
	}

	// v1 framing cannot carry a program.
	var v1 bytes.Buffer
	v1.Write(protocolMagic[:])
	v1.WriteByte(CmdProgram)
	if _, err := ReadRequest(&v1, ts.params); !errors.Is(err, ErrMalformedRequest) {
		t.Fatalf("v1 program request: err = %v, want ErrMalformedRequest", err)
	}
}

func TestProgramResponseRoundTrip(t *testing.T) {
	ts := newTestSystem(t)
	resp := &ProgramResponse{
		ID:            9,
		Outputs:       []*fv.Ciphertext{ts.encrypt(t, 8)},
		MakespanNanos: 1234,
		SerialNanos:   5678,
		KeyLoads:      1,
		Nodes:         2,
	}
	var buf bytes.Buffer
	if err := WriteProgramResponse(&buf, ts.params, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgramResponse(&buf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.MakespanNanos != 1234 || got.SerialNanos != 5678 ||
		got.KeyLoads != 1 || got.Nodes != 2 || len(got.Outputs) != 1 {
		t.Fatalf("round trip changed fields: %+v", got)
	}
	if ts.decrypt(got.Outputs[0]) != 8 {
		t.Fatal("output ciphertext corrupted in transit")
	}

	// Error path.
	var ebuf bytes.Buffer
	if err := WriteProgramResponse(&ebuf, ts.params, &ProgramResponse{
		ID: 10, Err: "no such tenant", Code: CodeApp,
	}); err != nil {
		t.Fatal(err)
	}
	eresp, err := ReadProgramResponse(&ebuf, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	if eresp.Err != "no such tenant" || eresp.Code != CodeApp || eresp.ID != 10 {
		t.Fatalf("error round trip changed fields: %+v", eresp)
	}

	// Truncations must error with the typed sentinel, never succeed.
	full := buf.Len()
	var whole bytes.Buffer
	WriteProgramResponse(&whole, ts.params, resp)
	for _, cut := range []int{1, 10, full / 2} {
		if _, err := ReadProgramResponse(bytes.NewReader(whole.Bytes()[:cut]), ts.params); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}

// TestServerProgramEndToEnd: a client submits one compiled program over TCP
// and gets the circuit's outputs in one round trip; a malformed program gets
// a typed error response on a connection that stays usable.
func TestServerProgramEndToEnd(t *testing.T) {
	ts := newTestSystem(t)
	_, addr := startServer(t, ts)

	cl, err := Dial(addr, ts.params)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := buildTestProgram(t)
	inputs := []*fv.Ciphertext{ts.encrypt(t, 3), ts.encrypt(t, 5)}
	resp, err := cl.RunProgram(context.Background(), p, inputs)
	if err != nil {
		t.Fatalf("RunProgram: %v", err)
	}
	// (3·5 + 3) mod 257 = 18.
	if got := ts.decrypt(resp.Outputs[0]); got != 18 {
		t.Fatalf("program output decrypts to %d, want 18", got)
	}
	if resp.Nodes != 2 || resp.KeyLoads != 1 {
		t.Fatalf("accounting: nodes %d key loads %d, want 2 and 1", resp.Nodes, resp.KeyLoads)
	}
	if resp.MakespanNanos == 0 || resp.SerialNanos < resp.MakespanNanos {
		t.Fatalf("makespan %d / serial %d nanos implausible", resp.MakespanNanos, resp.SerialNanos)
	}

	// Garbage program bytes: typed server error, connection survives.
	bad := make([]byte, 64)
	copy(bad, "HEPG")
	_, err = cl.DoProgram(context.Background(), &Request{ProgBytes: bad, Inputs: inputs})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeApp {
		t.Fatalf("malformed program: err = %v, want *ServerError with CodeApp", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after program error: %v", err)
	}

	// A program for a tenant with no relin key: deterministic app error.
	_, err = cl.DoProgram(context.Background(), &Request{
		Tenant: "ghost", ProgBytes: mustEncode(t, p), Inputs: inputs,
	})
	if !errors.As(err, &se) || se.Code != CodeApp || se.Retryable() {
		t.Fatalf("missing key: err = %v, want non-retryable *ServerError", err)
	}
}

func mustEncode(t *testing.T, p *program.Program) []byte {
	t.Helper()
	data, err := p.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
