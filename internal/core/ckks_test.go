package core

import (
	"testing"

	"repro/internal/ckks"
	"repro/internal/sampler"
)

func TestCKKSAcceleratorEndToEnd(t *testing.T) {
	p, err := ckks.NewParams(ckks.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewPRNG(9)
	kg := ckks.NewKeyGenerator(p, prng)
	sk, pk, rk := kg.GenKeys()
	gk := kg.GenGaloisKey(sk, p.GaloisElementForRotation(1))
	enc := ckks.NewEncoder(p)
	encr := ckks.NewEncryptor(p, pk, prng)
	ev := ckks.NewEvaluator(p)

	vals := make([]float64, p.Slots())
	for i := range vals {
		vals[i] = float64(i%11)/10.0 - 0.5
	}
	pt, err := enc.Encode(vals, p.MaxLevel(), p.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt)

	acc, err := NewCKKS(p, 2)
	if err != nil {
		t.Fatal(err)
	}

	sum, rep, err := acc.Add(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComputeCycles == 0 || rep.SendCycles == 0 || rep.ReceiveCycles == 0 {
		t.Fatalf("add report has zero rows: %+v", rep)
	}
	swSum := ev.Add(ct, ct)
	if sum.Els[0].Rows[0].Coeffs[0] != swSum.Els[0].Rows[0].Coeffs[0] {
		t.Fatal("accelerator Add diverged from software")
	}

	prod, rep, err := acc.Mul(ct, ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Level() != ct.Level()-1 {
		t.Fatalf("Mul result at level %d, want %d", prod.Level(), ct.Level()-1)
	}
	swProd := ev.Rescale(ev.Mul(ct, ct, rk))
	for j := range swProd.Els[0].Rows {
		for i, v := range swProd.Els[0].Rows[j].Coeffs {
			if prod.Els[0].Rows[j].Coeffs[i] != v {
				t.Fatalf("accelerator Mul diverged at row %d coeff %d", j, i)
			}
		}
	}
	if rep.ComputeCycles == 0 {
		t.Fatal("mul report charged no compute cycles")
	}

	rot, _, err := acc.Rotate(ct, 1, gk)
	if err != nil {
		t.Fatal(err)
	}
	swRot := ev.Rotate(ct, 1, gk)
	if rot.Els[1].Rows[0].Coeffs[3] != swRot.Els[1].Rows[0].Coeffs[3] {
		t.Fatal("accelerator Rotate diverged from software")
	}

	if got := CKKSLevelKeyBytes(p, 2); got != 2*3*4*p.N()*4 {
		t.Fatalf("CKKSLevelKeyBytes(2) = %d", got)
	}
	if acc.Stats().Total == 0 {
		t.Fatal("shared stats ledger stayed empty")
	}
}
