package core

import (
	"sync"

	"repro/internal/ckks"
	"repro/internal/faults"
	"repro/internal/hwsim"
	"repro/internal/obs"
	"repro/internal/sched"
)

// CKKSAccelerator is the approximate-arithmetic sibling of Accelerator: the
// same simulated Arm+FPGA platform serving CKKS operations through the chain
// co-processor. Results are bit-exact against the pure-software
// ckks.Evaluator, and every operation returns the same Report shape as the
// BFV path so serving layers account both schemes uniformly.
type CKKSAccelerator struct {
	Params *ckks.Params

	scheds []*ckksWorker
}

type ckksWorker struct {
	mu sync.Mutex
	s  *sched.CKKSScheduler
}

// NewCKKS builds a CKKS accelerator with `coprocs` scheduler instances (the
// chain co-processors underneath are built lazily per level).
func NewCKKS(params *ckks.Params, coprocs int) (*CKKSAccelerator, error) {
	return NewCKKSWithTiming(params, coprocs, hwsim.DefaultTiming())
}

// NewCKKSWithTiming builds a CKKS accelerator with explicit timing
// calibration.
func NewCKKSWithTiming(params *ckks.Params, coprocs int, timing hwsim.Timing) (*CKKSAccelerator, error) {
	if coprocs < 1 {
		coprocs = 1
	}
	a := &CKKSAccelerator{Params: params}
	for i := 0; i < coprocs; i++ {
		a.scheds = append(a.scheds, &ckksWorker{s: sched.NewCKKS(params, timing)})
	}
	return a, nil
}

// NumCoprocessors returns the scheduler-pool size.
func (a *CKKSAccelerator) NumCoprocessors() int { return len(a.scheds) }

// EnableIntegrity switches fingerprint verification on for every scheduler's
// chain co-processors, with per-instance seeds derived from seed.
func (a *CKKSAccelerator) EnableIntegrity(seed int64) error {
	for i, w := range a.scheds {
		if err := w.s.EnableIntegrity(seed + 1000*int64(i)); err != nil {
			return err
		}
	}
	return nil
}

// SetFaultInjector attaches a fault injector to every scheduler (nil
// detaches).
func (a *CKKSAccelerator) SetFaultInjector(inj *faults.Injector) {
	for _, w := range a.scheds {
		w.s.SetInjector(inj)
	}
}

// SetMetrics routes integrity detection and recovery counters into reg
// (nil-safe).
func (a *CKKSAccelerator) SetMetrics(reg *obs.Registry) {
	for _, w := range a.scheds {
		w.s.SetMetrics(reg)
	}
}

// Stats returns scheduler 0's accumulated per-instruction statistics.
func (a *CKKSAccelerator) Stats() *hwsim.Stats { return a.scheds[0].s.Stats }

func (a *CKKSAccelerator) onWorker(i int, f func(*sched.CKKSScheduler) error) error {
	w := a.scheds[i%len(a.scheds)]
	w.mu.Lock()
	defer w.mu.Unlock()
	return f(w.s)
}

// ckksTransferReport fills the operand-send and result-receive rows from the
// DMA model: sendPolys level-`sendLevel` polynomials in, two
// level-`recvLevel` polynomials out.
func (a *CKKSAccelerator) ckksTransferReport(rep *Report, sendPolys, sendLevel, recvLevel int) {
	d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
	rep.SendCycles = d.FPGACycles(hwsim.Transfer{
		Bytes: sendPolys * hwsim.PolyBytes(a.Params.N(), sendLevel+1)})
	rep.ReceiveCycles = d.FPGACycles(hwsim.Transfer{
		Bytes: 2 * hwsim.PolyBytes(a.Params.N(), recvLevel+1)})
}

// Add computes CKKS addition on the accelerator.
func (a *CKKSAccelerator) Add(x, y *ckks.Ciphertext) (*ckks.Ciphertext, Report, error) {
	var ct *ckks.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.CKKSScheduler) error {
		res, cycles, err := s.Add(x, y)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	a.ckksTransferReport(&rep, 4, x.Level(), ct.Level())
	return ct, rep, nil
}

// Mul computes the full CKKS multiply — tensor, relinearization, and the
// trailing Rescale — returning the degree-1 result one level down. Compute
// cycles include the per-digit key streaming, as in the BFV Mult accounting.
func (a *CKKSAccelerator) Mul(x, y *ckks.Ciphertext, rk *ckks.RelinKey) (*ckks.Ciphertext, Report, error) {
	var ct *ckks.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.CKKSScheduler) error {
		res, cycles, err := s.MulRescale(x, y, rk)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	a.ckksTransferReport(&rep, 4, x.Level(), ct.Level())
	return ct, rep, nil
}

// Rotate applies a slot rotation with key switch on the accelerator.
func (a *CKKSAccelerator) Rotate(x *ckks.Ciphertext, r int, gk *ckks.GaloisKey) (*ckks.Ciphertext, Report, error) {
	var ct *ckks.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.CKKSScheduler) error {
		res, cycles, err := s.Rotate(x, r, gk)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	a.ckksTransferReport(&rep, 2, x.Level(), ct.Level())
	return ct, rep, nil
}

// CKKSLevelKeyBytes returns the DMA transfer size of one level-ℓ evaluation
// key bundle: two polynomial vectors of ℓ+1 gadget digits, each an
// extended-row (chain + p*) polynomial. This is the unit an evaluation-key
// cache holds resident per level.
func CKKSLevelKeyBytes(p *ckks.Params, level int) int {
	return 2 * (level + 1) * hwsim.PolyBytes(p.N(), level+2)
}

// CKKSKeyBytes returns the total DMA size of a full multi-level evaluation
// key (relinearization or Galois): the sum of every level bundle.
func CKKSKeyBytes(p *ckks.Params, levels int) int {
	total := 0
	for l := 1; l <= levels; l++ {
		total += CKKSLevelKeyBytes(p, l)
	}
	return total
}

// KeyStreamCycles returns the co-processor cycles of streaming `bytes` of
// evaluation-key material over the DMA.
func (a *CKKSAccelerator) KeyStreamCycles(bytes int) hwsim.Cycles {
	d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
	return d.FPGACycles(hwsim.Transfer{Bytes: bytes, Label: "evk stream"})
}
