package core

import (
	"testing"

	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/sampler"
)

func testAccel(t testing.TB, variant hwsim.Variant, coprocs int) (*Accelerator, *fv.Params) {
	t.Helper()
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(params, variant, coprocs)
	if err != nil {
		t.Fatal(err)
	}
	return a, params
}

func TestAcceleratorAddMul(t *testing.T) {
	a, p := testAccel(t, hwsim.VariantHPS, 2)
	prng := sampler.NewPRNG(1)
	kg := fv.NewKeyGenerator(p, prng)
	sk, pk, rk := kg.GenKeys()
	enc := fv.NewEncryptor(p, pk, prng)
	dec := fv.NewDecryptor(p, sk)
	ev := fv.NewEvaluator(p)

	x := fv.NewPlaintext(p)
	y := fv.NewPlaintext(p)
	x.Coeffs[0], y.Coeffs[0] = 11, 12
	cx, cy := enc.Encrypt(x), enc.Encrypt(y)

	sum, repAdd, err := a.Add(cx, cy)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(ev.Add(cx, cy)) {
		t.Fatal("accelerated Add != software Add")
	}
	if got := dec.Decrypt(sum).Coeffs[0]; got != 23 {
		t.Fatalf("11+12 = %d", got)
	}
	if repAdd.ComputeCycles == 0 || repAdd.SendCycles == 0 || repAdd.ReceiveCycles == 0 {
		t.Fatalf("incomplete Add report: %+v", repAdd)
	}

	prod, repMul, err := a.Mul(cx, cy, rk)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(ev.Mul(cx, cy, rk)) {
		t.Fatal("accelerated Mul != software Mul")
	}
	if got := dec.Decrypt(prod).Coeffs[0]; got != 132 {
		t.Fatalf("11·12 = %d", got)
	}
	// Mult must dominate Add by orders of magnitude (paper: 4.458 ms vs
	// 0.026 ms).
	if repMul.ComputeCycles < 20*repAdd.ComputeCycles {
		t.Fatalf("Mult (%d cycles) should be ≫ Add (%d cycles)",
			repMul.ComputeCycles, repAdd.ComputeCycles)
	}
	if repMul.TotalSeconds() <= repMul.ComputeSeconds() {
		t.Fatal("total must include transfers")
	}
	if repMul.ArmCycles() != repMul.ComputeCycles.ArmCycles() {
		t.Fatal("Arm cycle view inconsistent")
	}
}

func TestMulBatchThroughputScaling(t *testing.T) {
	p, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewPRNG(2)
	kg := fv.NewKeyGenerator(p, prng)
	sk, pk, rk := kg.GenKeys()
	enc := fv.NewEncryptor(p, pk, prng)
	dec := fv.NewDecryptor(p, sk)

	const jobs = 4
	xs := make([]*fv.Ciphertext, jobs)
	ys := make([]*fv.Ciphertext, jobs)
	for i := range xs {
		px := fv.NewPlaintext(p)
		py := fv.NewPlaintext(p)
		px.Coeffs[0] = uint64(i + 2)
		py.Coeffs[0] = uint64(i + 3)
		xs[i] = enc.Encrypt(px)
		ys[i] = enc.Encrypt(py)
	}

	one, err := New(p, hwsim.VariantHPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := New(p, hwsim.VariantHPS, 2)
	if err != nil {
		t.Fatal(err)
	}
	res1, t1, err := one.MulBatch(xs, ys, rk)
	if err != nil {
		t.Fatal(err)
	}
	res2, t2, err := two.MulBatch(xs, ys, rk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1 {
		want := uint64((i + 2) * (i + 3))
		if got := dec.Decrypt(res1[i]).Coeffs[0]; got != want%257 {
			t.Fatalf("job %d (1 coproc): %d, want %d", i, got, want)
		}
		if !res1[i].Equal(res2[i]) {
			t.Fatalf("job %d differs between platforms", i)
		}
	}
	// Two co-processors halve the simulated wall clock (paper: 2x
	// throughput).
	ratio := t1 / t2
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("2-coproc speedup %.2f, want ≈ 2.0", ratio)
	}
}

func TestTraditionalVariantSlower(t *testing.T) {
	p, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewPRNG(3)
	kg := fv.NewKeyGenerator(p, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rkHPS := kg.GenRelinKey(sk, fv.HPS, 0, 0)
	rkTrad := kg.GenRelinKey(sk, fv.Traditional, p.Cfg.RelinLogW, p.Cfg.RelinDepth)
	enc := fv.NewEncryptor(p, pk, prng)
	ct := enc.Encrypt(fv.NewPlaintext(p))

	fast, err := New(p, hwsim.VariantHPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(p, hwsim.VariantTraditional, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, repFast, err := fast.Mul(ct, ct, rkHPS)
	if err != nil {
		t.Fatal(err)
	}
	_, repSlow, err := slow.Mul(ct, ct, rkTrad)
	if err != nil {
		t.Fatal(err)
	}
	// The traditional lift/scale dominates (paper Sec. VI-C: Mult < 2x
	// slower overall, lift/scale themselves ≫ slower).
	if repSlow.ComputeCycles <= repFast.ComputeCycles {
		t.Fatalf("traditional (%d) should be slower than HPS (%d)",
			repSlow.ComputeCycles, repFast.ComputeCycles)
	}
}

func TestNewPaperSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper parameters are slow")
	}
	a, err := NewPaper(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCoprocessors() != 2 {
		t.Fatal("paper platform has two co-processors")
	}
	if a.Params.N() != 4096 || a.Params.QBasis.K() != 6 || a.Params.PBasis.K() != 7 {
		t.Fatal("paper parameter shape wrong")
	}
}
