package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/sampler"
)

// ExampleAccelerator runs one homomorphic multiplication on the simulated
// two-co-processor platform and confirms the result is bit-exact against
// the software evaluator.
func ExampleAccelerator() {
	params, _ := fv.NewParams(fv.TestConfig(65537))
	prng := sampler.NewPRNG(1)
	kg := fv.NewKeyGenerator(params, prng)
	sk, pk, rk := kg.GenKeys()
	_ = sk

	enc := fv.NewEncryptor(params, pk, prng)
	encode := fv.NewIntegerEncoder(params)
	ctA := enc.Encrypt(encode.Encode(6))
	ctB := enc.Encrypt(encode.Encode(7))

	accel, _ := core.New(params, hwsim.VariantHPS, 2)
	hwResult, _, _ := accel.Mul(ctA, ctB, rk)
	swResult := fv.NewEvaluator(params).Mul(ctA, ctB, rk)

	fmt.Println(hwResult.Equal(swResult))
	// Output: true
}
