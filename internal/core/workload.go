package core

import (
	"fmt"

	"repro/internal/fv"
	"repro/internal/sched"
)

// Workload simulation: the paper's throughput claim ("we can compute 400
// Mult operations per second", Sec. VI-A) is a sustained-service statement
// about the Fig. 11 system — a networking core queueing jobs onto two
// co-processor workers. ServeWorkload replays a job stream against the
// accelerator in simulated time: each job really executes (results are
// returned), its simulated hardware latency advances the owning worker's
// clock, and the dispatcher always picks the earliest-free worker.

// Job is one homomorphic operation request with its arrival time in the
// simulated clock.
type Job struct {
	ArrivalSec float64
	A, B       *fv.Ciphertext
}

// WorkloadStats summarizes a simulated service run.
type WorkloadStats struct {
	Jobs           int
	MakespanSec    float64 // completion time of the last job
	ThroughputPerS float64 // jobs / makespan
	MeanLatencySec float64 // mean (completion - arrival)
	MaxQueueDelay  float64 // worst wait before service started
	Utilization    float64 // busy time / (workers × makespan)
}

// ServeWorkload runs the jobs through the accelerator's co-processors in
// simulated time and returns the results plus service statistics. Jobs must
// be sorted by arrival time.
func (a *Accelerator) ServeWorkload(jobs []Job, rk *fv.RelinKey) ([]*fv.Ciphertext, WorkloadStats, error) {
	if len(jobs) == 0 {
		return nil, WorkloadStats{}, fmt.Errorf("core: empty workload")
	}
	workers := len(a.scheds)
	freeAt := make([]float64, workers)
	results := make([]*fv.Ciphertext, len(jobs))

	var stats WorkloadStats
	stats.Jobs = len(jobs)
	busy := 0.0
	prevArrival := jobs[0].ArrivalSec
	for i, job := range jobs {
		if job.ArrivalSec < prevArrival {
			return nil, stats, fmt.Errorf("core: job %d arrives out of order", i)
		}
		prevArrival = job.ArrivalSec

		// Earliest-free worker (the networking core's dispatch policy).
		w := 0
		for k := 1; k < workers; k++ {
			if freeAt[k] < freeAt[w] {
				w = k
			}
		}
		start := job.ArrivalSec
		if freeAt[w] > start {
			start = freeAt[w]
		}
		var execSec float64
		err := a.onWorker(w, func(s *sched.Scheduler) error {
			s.C.ResetStats()
			res, cycles, err := s.Mul(job.A, job.B, rk)
			if err != nil {
				return err
			}
			results[i] = res
			execSec = cycles.Seconds()
			return nil
		})
		if err != nil {
			return nil, stats, err
		}
		finish := start + execSec
		freeAt[w] = finish
		busy += execSec

		if wait := start - job.ArrivalSec; wait > stats.MaxQueueDelay {
			stats.MaxQueueDelay = wait
		}
		stats.MeanLatencySec += finish - job.ArrivalSec
		if finish > stats.MakespanSec {
			stats.MakespanSec = finish
		}
	}
	stats.MeanLatencySec /= float64(len(jobs))
	if stats.MakespanSec > 0 {
		stats.ThroughputPerS = float64(len(jobs)) / stats.MakespanSec
		stats.Utilization = busy / (float64(workers) * stats.MakespanSec)
	}
	return results, stats, nil
}
