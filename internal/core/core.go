// Package core is the top-level public API of the reproduction: the
// domain-specific homomorphic-encryption accelerator of the paper, bound
// together from the FV scheme (internal/fv), the co-processor simulator
// (internal/hwsim), and the instruction scheduler (internal/sched).
//
// An Accelerator owns a simulated Zynq platform — co-processor instances in
// the programmable logic, one scheduler ("application Arm core") per
// co-processor — and executes homomorphic Add and Mult on it. Results are
// bit-exact against the pure-software evaluator, and every operation returns
// a Report with the cycle, time, and transfer accounting that reproduces the
// paper's tables.
package core

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Accelerator is a simulated instance of the paper's Arm+FPGA platform.
type Accelerator struct {
	Params   *fv.Params
	Variant  hwsim.Variant
	Platform *hwsim.Platform

	scheds []*worker
}

type worker struct {
	mu sync.Mutex
	s  *sched.Scheduler
}

// Report is the timing accounting of one accelerated operation.
type Report struct {
	// ComputeCycles is the FPGA-cycle duration of the instruction sequence,
	// including intermediate DMA (relinearization-key streaming) — the view
	// of Table I's "Mult in HW"/"Add in HW" rows.
	ComputeCycles hwsim.Cycles
	// SendCycles/ReceiveCycles are the operand and result transfers
	// (Table I rows 4–5).
	SendCycles    hwsim.Cycles
	ReceiveCycles hwsim.Cycles
	// KeyLoadCycles is the evaluation-key DMA stream charged to this
	// operation by a serving layer (internal/engine): zero when the key was
	// already resident on the co-processor, the full stream otherwise. The
	// paper overlaps this stream with compute; accounting it separately
	// keeps ComputeCycles comparable to Table I.
	KeyLoadCycles hwsim.Cycles
}

// ComputeSeconds returns the compute latency in seconds.
func (r Report) ComputeSeconds() float64 { return r.ComputeCycles.Seconds() }

// TotalSeconds returns compute plus transfer latency (operands, result, and
// any evaluation-key stream charged by the serving layer).
func (r Report) TotalSeconds() float64 {
	return (r.ComputeCycles + r.SendCycles + r.ReceiveCycles + r.KeyLoadCycles).Seconds()
}

// ArmCycles returns the compute latency in the Arm cycle-counter units the
// paper's tables use.
func (r Report) ArmCycles() uint64 { return r.ComputeCycles.ArmCycles() }

// New builds an accelerator with `coprocs` co-processor instances (the paper
// implements two) running the given lift/scale variant.
func New(params *fv.Params, variant hwsim.Variant, coprocs int) (*Accelerator, error) {
	timing := hwsim.DefaultTiming()
	if variant == hwsim.VariantTraditional {
		// The paper's slower architecture compensates for the expensive
		// multi-precision Lift/Scale with four parallel cores ("To speedup
		// computation, we keep four parallel cores", Sec. VI-C).
		timing.LiftScaleCores = 4
	}
	return NewWithTiming(params, variant, coprocs, timing)
}

// NewWithTiming builds an accelerator with explicit timing calibration.
func NewWithTiming(params *fv.Params, variant hwsim.Variant, coprocs int, timing hwsim.Timing) (*Accelerator, error) {
	// PipelinedMinSlots(2) is MinSlots plus one shadow operand bank, so every
	// accelerator can run MulStream's double-buffered prefetch; the extra
	// four slots are dead weight for purely sequential callers.
	slots := sched.PipelinedMinSlots(2)
	factory := func() (*hwsim.Coprocessor, error) {
		return hwsim.NewCoprocessor(params.QMods, params.PMods, params.N(),
			params.Lifter, params.Scaler, variant, timing, slots)
	}
	platform, err := hwsim.NewPlatform(factory, coprocs)
	if err != nil {
		return nil, err
	}
	a := &Accelerator{Params: params, Variant: variant, Platform: platform}
	for _, c := range platform.Coprocs {
		a.scheds = append(a.scheds, &worker{s: sched.New(params, c)})
	}
	return a, nil
}

// NewPaper builds the paper's implemented configuration: the n = 4096
// parameter set, the HPS architecture, two co-processors.
func NewPaper(t uint64) (*Accelerator, error) {
	params, err := fv.NewParams(fv.PaperConfig(t))
	if err != nil {
		return nil, err
	}
	return New(params, hwsim.VariantHPS, 2)
}

// NumCoprocessors returns the co-processor count.
func (a *Accelerator) NumCoprocessors() int { return len(a.scheds) }

// EnableIntegrity switches Freivalds-style fingerprint verification on for
// every co-processor, with per-instance seeds derived from seed. Operations
// then fail with an error wrapping hwsim.ErrIntegrity instead of returning a
// corrupted ciphertext.
func (a *Accelerator) EnableIntegrity(seed int64) error {
	for i, c := range a.Platform.Coprocs {
		if err := c.EnableIntegrity(seed + int64(i)); err != nil {
			return err
		}
	}
	return nil
}

// SetFaultInjector attaches a fault injector to every co-processor (nil
// detaches). Engines share one injector across workers so a chaos schedule
// spans the pool.
func (a *Accelerator) SetFaultInjector(inj *faults.Injector) {
	for _, c := range a.Platform.Coprocs {
		c.SetInjector(inj)
	}
}

// SetMetrics routes the co-processors' integrity detection and recovery
// counters into reg (nil-safe).
func (a *Accelerator) SetMetrics(reg *obs.Registry) {
	for _, c := range a.Platform.Coprocs {
		c.SetMetrics(reg)
	}
}

// worker 0 serves sequential calls; MulBatch spreads over all of them.
func (a *Accelerator) onWorker(i int, f func(*sched.Scheduler) error) error {
	w := a.scheds[i%len(a.scheds)]
	w.mu.Lock()
	defer w.mu.Unlock()
	return f(w.s)
}

// transferReport fills the operand-send and result-receive rows of a report
// from the DMA model (Table I rows 4–5: two ciphertexts in, one out).
func (a *Accelerator) transferReport(rep *Report) {
	d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
	polyBytes := hwsim.PolyBytes(a.Params.N(), a.Params.QBasis.K())
	rep.SendCycles = d.FPGACycles(hwsim.Transfer{Bytes: 4 * polyBytes})
	rep.ReceiveCycles = d.FPGACycles(hwsim.Transfer{Bytes: 2 * polyBytes})
}

// Add computes FV.Add on the accelerator.
func (a *Accelerator) Add(x, y *fv.Ciphertext) (*fv.Ciphertext, Report, error) {
	var ct *fv.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.Scheduler) error {
		s.C.ResetStats()
		res, cycles, err := s.Add(x, y)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	a.transferReport(&rep)
	return ct, rep, err
}

// Mul computes FV.Mult on the accelerator, returning the relinearized
// ciphertext and the timing report.
func (a *Accelerator) Mul(x, y *fv.Ciphertext, rk *fv.RelinKey) (*fv.Ciphertext, Report, error) {
	var ct *fv.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.Scheduler) error {
		s.C.ResetStats()
		res, cycles, err := s.Mul(x, y, rk)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	a.transferReport(&rep)
	return ct, rep, err
}

// MulStream runs independent multiplications as one double-buffered stream
// on co-processor 0: while step i computes, step i+1's operands are DMAed
// into a shadow bank of the memory file, so the pipelined makespan beats the
// back-to-back serial cost by exactly the overlapped transfer cycles.
// Results are bit-identical to calling Mul in a loop; the StreamReport
// carries the per-step profile and the exact serial/pipelined schedule.
func (a *Accelerator) MulStream(xs, ys []*fv.Ciphertext, rk *fv.RelinKey) ([]*fv.Ciphertext, sched.StreamReport, error) {
	if len(xs) != len(ys) {
		return nil, sched.StreamReport{}, fmt.Errorf("core: operand count mismatch")
	}
	pairs := make([][2]*fv.Ciphertext, len(xs))
	for i := range xs {
		pairs[i] = [2]*fv.Ciphertext{xs[i], ys[i]}
	}
	var results []*fv.Ciphertext
	var rep sched.StreamReport
	err := a.onWorker(0, func(s *sched.Scheduler) error {
		s.C.ResetStats()
		ps := &sched.PipelinedScheduler{S: s, Banks: 2}
		res, sr, err := ps.MulStream(pairs, rk)
		if err != nil {
			return err
		}
		results, rep = res, sr
		return nil
	})
	return results, rep, err
}

// Rotate applies a Galois automorphism with key switch on the accelerator.
func (a *Accelerator) Rotate(x *fv.Ciphertext, gk *fv.GaloisKey) (*fv.Ciphertext, Report, error) {
	var ct *fv.Ciphertext
	var rep Report
	err := a.onWorker(0, func(s *sched.Scheduler) error {
		s.C.ResetStats()
		res, cycles, err := s.Rotate(x, gk)
		if err != nil {
			return err
		}
		ct = res
		rep.ComputeCycles = cycles
		return nil
	})
	a.transferReport(&rep)
	return ct, rep, err
}

// MulBatch runs independent multiplications across all co-processors
// concurrently (the paper's dual-co-processor throughput experiment:
// "two Mult operations take roughly the same time as one"). It returns the
// results and the aggregate wall-clock seconds of the slowest co-processor.
func (a *Accelerator) MulBatch(xs, ys []*fv.Ciphertext, rk *fv.RelinKey) ([]*fv.Ciphertext, float64, error) {
	if len(xs) != len(ys) {
		return nil, 0, fmt.Errorf("core: operand count mismatch")
	}
	results := make([]*fv.Ciphertext, len(xs))
	perWorker := make([]float64, len(a.scheds))
	errs := make([]error, len(a.scheds))
	var wg sync.WaitGroup
	for w := range a.scheds {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += len(a.scheds) {
				err := a.onWorker(w, func(s *sched.Scheduler) error {
					res, cycles, err := s.Mul(xs[i], ys[i], rk)
					if err != nil {
						return err
					}
					results[i] = res
					perWorker[w] += cycles.Seconds()
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	slowest := 0.0
	for _, t := range perWorker {
		if t > slowest {
			slowest = t
		}
	}
	return results, slowest, nil
}

// Stats returns co-processor 0's accumulated per-instruction statistics.
func (a *Accelerator) Stats() *hwsim.Stats { return a.scheds[0].s.C.Stats }

// RelinKeyBytes returns the DMA transfer size of a relinearization key: two
// polynomial vectors of ell components, each a full R_q polynomial of 32-bit
// residue words. For the paper set (ell = 6) that is 2·6·98,304 ≈ 1.2 MB —
// which is why the paper streams the key during Mult instead of re-sending
// operand-style, and why a serving layer wants it cached.
func RelinKeyBytes(params *fv.Params, rk *fv.RelinKey) int {
	return 2 * rk.Ell * hwsim.PolyBytes(params.N(), params.QBasis.K())
}

// GaloisKeyBytes returns the DMA transfer size of a Galois key-switching
// key (same gadget shape as the relin key).
func GaloisKeyBytes(params *fv.Params, gk *fv.GaloisKey) int {
	return 2 * len(gk.Ks0Hat) * hwsim.PolyBytes(params.N(), params.QBasis.K())
}

// KeyStreamCycles returns the co-processor cycles of streaming `bytes` of
// evaluation-key material over the DMA (a single transfer, the paper's
// Table III optimum).
func (a *Accelerator) KeyStreamCycles(bytes int) hwsim.Cycles {
	d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
	return d.FPGACycles(hwsim.Transfer{Bytes: bytes, Label: "evk stream"})
}
