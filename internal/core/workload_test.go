package core

import (
	"testing"

	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/sampler"
)

func TestServeWorkloadSaturated(t *testing.T) {
	a, p := testAccel(t, hwsim.VariantHPS, 2)
	prng := sampler.NewPRNG(50)
	kg := fv.NewKeyGenerator(p, prng)
	sk, pk, rk := kg.GenKeys()
	enc := fv.NewEncryptor(p, pk, prng)
	dec := fv.NewDecryptor(p, sk)

	// Everything arrives at t=0: a saturated queue. With two workers the
	// sustained throughput must be ≈ 2 / multLatency and utilization ≈ 1.
	const jobs = 8
	js := make([]Job, jobs)
	for i := range js {
		pa := fv.NewPlaintext(p)
		pb := fv.NewPlaintext(p)
		pa.Coeffs[0] = uint64(i + 2)
		pb.Coeffs[0] = uint64(i + 3)
		js[i] = Job{A: enc.Encrypt(pa), B: enc.Encrypt(pb)}
	}
	results, stats, err := a.ServeWorkload(js, rk)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		want := uint64((i + 2) * (i + 3) % 257)
		if got := dec.Decrypt(res).Coeffs[0]; got != want {
			t.Fatalf("job %d: %d, want %d", i, got, want)
		}
	}
	if stats.Jobs != jobs || stats.MakespanSec <= 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	if stats.Utilization < 0.95 {
		t.Fatalf("saturated utilization %.2f, want ≈ 1", stats.Utilization)
	}
	// Throughput ≈ 2x single-worker rate.
	_, rep, err := a.Mul(js[0].A, js[0].B, rk)
	if err != nil {
		t.Fatal(err)
	}
	singleRate := 1 / rep.ComputeSeconds()
	if stats.ThroughputPerS < 1.8*singleRate || stats.ThroughputPerS > 2.1*singleRate {
		t.Fatalf("throughput %.0f/s vs single-worker %.0f/s: not ≈ 2x", stats.ThroughputPerS, singleRate)
	}
	// Queueing happened (8 jobs, 2 workers, all at t=0).
	if stats.MaxQueueDelay <= 0 {
		t.Fatal("saturated queue should produce waiting")
	}
}

func TestServeWorkloadIdle(t *testing.T) {
	a, p := testAccel(t, hwsim.VariantHPS, 2)
	prng := sampler.NewPRNG(51)
	kg := fv.NewKeyGenerator(p, prng)
	_, pk, rk := kg.GenKeys()
	enc := fv.NewEncryptor(p, pk, prng)

	// Arrivals far apart: no queueing, latency = service time.
	ct := enc.Encrypt(fv.NewPlaintext(p))
	js := []Job{
		{ArrivalSec: 0, A: ct, B: ct},
		{ArrivalSec: 1, A: ct, B: ct},
		{ArrivalSec: 2, A: ct, B: ct},
	}
	_, stats, err := a.ServeWorkload(js, rk)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxQueueDelay != 0 {
		t.Fatalf("idle system queued jobs: %+v", stats)
	}
	if stats.Utilization > 0.01 {
		t.Fatalf("idle utilization %.3f suspiciously high", stats.Utilization)
	}

	// Out-of-order arrivals are rejected.
	js[2].ArrivalSec = 0.5
	if _, _, err := a.ServeWorkload(js, rk); err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
	if _, _, err := a.ServeWorkload(nil, rk); err == nil {
		t.Fatal("empty workload accepted")
	}
}
