// Package difftest cross-checks the pure-software FV pipeline against the
// hardware simulator instruction-by-instruction. The paper's correctness
// claim is that the co-processor computes exactly what the scheme's software
// reference computes — not approximately, bit for bit — so every kernel pair
// (Transformer vs OpNTT/OpINTT, RNSPoly arithmetic vs OpCMul/OpCAdd/OpCSub/
// OpCMac, Evaluator.Mul vs the scheduled accelerator Mult with
// relinearization) must produce identical residues. The harness here feeds
// both sides the same deterministic inputs and reports the first divergence;
// the package's tests drive it with fixed vectors and Go fuzz corpora.
package difftest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/poly"
	"repro/internal/sampler"
)

// Harness owns one software parameter set and one co-processor built over
// the same primes, plus the key material for scheme-level comparisons.
type Harness struct {
	Params *fv.Params
	Coproc *hwsim.Coprocessor

	SK  *fv.SecretKey
	Enc *fv.Encryptor
	Dec *fv.Decryptor
	Ev  *fv.Evaluator
	RK  *fv.RelinKey
	Acc *core.Accelerator
}

// New builds a harness over cfg with deterministic keys from keySeed.
func New(cfg fv.Config, keySeed uint64) (*Harness, error) {
	params, err := fv.NewParams(cfg)
	if err != nil {
		return nil, err
	}
	cop, err := hwsim.NewCoprocessor(params.QMods, params.PMods, params.N(),
		params.Lifter, params.Scaler, hwsim.VariantHPS, hwsim.DefaultTiming(), 8)
	if err != nil {
		return nil, err
	}
	acc, err := core.New(params, hwsim.VariantHPS, 1)
	if err != nil {
		return nil, err
	}
	prng := sampler.NewPRNG(keySeed)
	kg := fv.NewKeyGenerator(params, prng)
	sk, pk, rk := kg.GenKeys()
	return &Harness{
		Params: params,
		Coproc: cop,
		SK:     sk,
		Enc:    fv.NewEncryptor(params, pk, prng),
		Dec:    fv.NewDecryptor(params, sk),
		Ev:     fv.NewEvaluator(params),
		RK:     rk,
		Acc:    acc,
	}, nil
}

// splitmix64 expands a byte seed into a deterministic uint64 stream; the
// same seed always drives both sides of a comparison with the same data.
func splitmix64(seed []byte) func() uint64 {
	s := uint64(0x9e3779b97f4a7c15)
	for _, b := range seed {
		s = (s ^ uint64(b)) * 0xbf58476d1ce4e5b9
	}
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// FullPolyFromSeed derives a full-basis (q then p rows) RNS polynomial with
// uniformly reduced residues from a byte seed.
func (h *Harness) FullPolyFromSeed(seed []byte) poly.RNSPoly {
	next := splitmix64(seed)
	x := poly.NewRNSPoly(h.Params.AllMods, h.Params.N())
	for i, m := range h.Params.AllMods {
		for c := range x.Rows[i].Coeffs {
			x.Rows[i].Coeffs[c] = m.Reduce(next())
		}
	}
	return x
}

// PlaintextFromSeed derives a plaintext with coefficients reduced mod t.
func (h *Harness) PlaintextFromSeed(seed []byte) *fv.Plaintext {
	next := splitmix64(seed)
	pt := fv.NewPlaintext(h.Params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = next() % h.Params.T()
	}
	return pt
}

// loadFull loads a full-basis polynomial into a co-processor slot in the
// coefficient domain (both batches).
func (h *Harness) loadFull(slot uint8, x poly.RNSPoly) {
	kq := h.Coproc.KQ
	h.Coproc.LoadSlotCoeff(slot, 0, x.Rows[:kq])
	h.Coproc.LoadSlotCoeff(slot, kq, x.Rows[kq:])
}

// readFull reads a full-basis slot back.
func (h *Harness) readFull(slot uint8) []poly.Poly {
	return h.Coproc.ReadSlot(slot, 0, h.Coproc.KQ+h.Coproc.KP)
}

// execBothBatches issues in for BatchQ and BatchP (full-basis coverage).
func (h *Harness) execBothBatches(in hwsim.Instr) error {
	for _, b := range []hwsim.Batch{hwsim.BatchQ, hwsim.BatchP} {
		in.Batch = b
		if _, err := h.Coproc.Exec(in); err != nil {
			return err
		}
	}
	return nil
}

func diffRows(what string, got []poly.Poly, want poly.RNSPoly) error {
	for i := range want.Rows {
		if !got[i].Equal(want.Rows[i]) {
			for c := range want.Rows[i].Coeffs {
				if got[i].Coeffs[c] != want.Rows[i].Coeffs[c] {
					return fmt.Errorf("%s diverges at row %d coeff %d: hw=%d sw=%d",
						what, i, c, got[i].Coeffs[c], want.Rows[i].Coeffs[c])
				}
			}
		}
	}
	return nil
}

// DiffTransform runs the forward and inverse transforms on both sides and
// returns the first divergence (nil when bit-identical). The input is not
// modified.
func (h *Harness) DiffTransform(x poly.RNSPoly) error {
	sw := x.Clone()
	h.Params.TrFull.Forward(sw)

	h.Coproc.ClearSlots()
	h.loadFull(0, x)
	if err := h.execBothBatches(hwsim.Instr{Op: hwsim.OpNTT, A: 0}); err != nil {
		return err
	}
	if err := diffRows("NTT", h.readFull(0), sw); err != nil {
		return err
	}
	if err := h.execBothBatches(hwsim.Instr{Op: hwsim.OpINTT, A: 0}); err != nil {
		return err
	}
	// The inverse of the forward must restore the original exactly.
	return diffRows("NTT/INTT round trip", h.readFull(0), x)
}

// DiffPointwise runs coefficient-wise add, sub, mul, and mac on both sides
// and returns the first divergence.
func (h *Harness) DiffPointwise(a, b poly.RNSPoly) error {
	mods := h.Params.AllMods
	n := h.Params.N()
	sum := poly.NewRNSPoly(mods, n)
	dif := poly.NewRNSPoly(mods, n)
	mac := poly.NewRNSPoly(mods, n)
	a.AddInto(b, sum)
	a.SubInto(b, dif)
	a.MulInto(b, mac)
	a.MulAddInto(b, mac) // mac = 2·a⊙b

	h.Coproc.ClearSlots()
	h.loadFull(0, a)
	h.loadFull(1, b)
	steps := []hwsim.Instr{
		{Op: hwsim.OpCAdd, Dst: 2, A: 0, B: 1},
		{Op: hwsim.OpCSub, Dst: 3, A: 0, B: 1},
		{Op: hwsim.OpCMul, Dst: 4, A: 0, B: 1},
		{Op: hwsim.OpCMac, Dst: 4, A: 0, B: 1},
	}
	for _, in := range steps {
		if err := h.execBothBatches(in); err != nil {
			return err
		}
	}
	if err := diffRows("CAdd", h.readFull(2), sum); err != nil {
		return err
	}
	if err := diffRows("CSub", h.readFull(3), dif); err != nil {
		return err
	}
	return diffRows("CMul+CMac", h.readFull(4), mac)
}

// DiffMul encrypts the two plaintexts, multiplies with relinearization on
// the scheduled accelerator and in pure software, and requires bit-identical
// ciphertexts and identical decryptions.
func (h *Harness) DiffMul(ptA, ptB *fv.Plaintext) error {
	ca, cb := h.Enc.Encrypt(ptA), h.Enc.Encrypt(ptB)

	sw := h.Ev.Mul(ca, cb, h.RK)
	// The one-shot path and the explicit tensor+relinearize path must agree
	// before the hardware comparison means anything.
	if two := h.Ev.Relinearize(h.Ev.MulNoRelin(ca, cb), h.RK); !sw.Equal(two) {
		return fmt.Errorf("software Mul != Relinearize(MulNoRelin)")
	}
	hw, _, err := h.Acc.Mul(ca, cb, h.RK)
	if err != nil {
		return err
	}
	if !hw.Equal(sw) {
		return fmt.Errorf("accelerator Mul ciphertext differs from software")
	}
	if !h.Dec.Decrypt(hw).Equal(h.Dec.Decrypt(sw)) {
		return fmt.Errorf("accelerator and software decryptions differ")
	}
	return nil
}

// DiffAdd is DiffMul's counterpart for homomorphic addition.
func (h *Harness) DiffAdd(ptA, ptB *fv.Plaintext) error {
	ca, cb := h.Enc.Encrypt(ptA), h.Enc.Encrypt(ptB)
	sw := h.Ev.Add(ca, cb)
	hw, _, err := h.Acc.Add(ca, cb)
	if err != nil {
		return err
	}
	if !hw.Equal(sw) {
		return fmt.Errorf("accelerator Add ciphertext differs from software")
	}
	return nil
}
