package difftest

import (
	"sync"
	"testing"

	"repro/internal/ckks"
	"repro/internal/fv"
)

var (
	harnessOnce sync.Once
	harness     *Harness
	harnessErr  error
)

// getHarness shares one harness (keygen is the expensive part) across the
// deterministic tests and the fuzz seed corpus.
func getHarness(t testing.TB) *Harness {
	t.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = New(fv.TestConfig(257), 42)
	})
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	return harness
}

func TestDiffTransformDeterministic(t *testing.T) {
	h := getHarness(t)
	for _, seed := range []string{"", "a", "ntt-vector-1", "ntt-vector-2"} {
		if err := h.DiffTransform(h.FullPolyFromSeed([]byte(seed))); err != nil {
			t.Fatalf("seed %q: %v", seed, err)
		}
	}
}

func TestDiffTransformEdgeVectors(t *testing.T) {
	h := getHarness(t)
	// All-zero and delta inputs exercise the lazy-reduction butterflies at
	// the boundary values (0 and q-1) where conditional subtractions bite.
	zero := h.FullPolyFromSeed(nil)
	for i := range zero.Rows {
		for c := range zero.Rows[i].Coeffs {
			zero.Rows[i].Coeffs[c] = 0
		}
	}
	if err := h.DiffTransform(zero); err != nil {
		t.Fatalf("zero vector: %v", err)
	}
	delta := zero.Clone()
	for i := range delta.Rows {
		delta.Rows[i].Coeffs[0] = delta.Rows[i].Mod.Q - 1
	}
	if err := h.DiffTransform(delta); err != nil {
		t.Fatalf("(q-1)·δ vector: %v", err)
	}
}

func TestDiffPointwiseDeterministic(t *testing.T) {
	h := getHarness(t)
	a := h.FullPolyFromSeed([]byte("lhs"))
	b := h.FullPolyFromSeed([]byte("rhs"))
	if err := h.DiffPointwise(a, b); err != nil {
		t.Fatal(err)
	}
	// a against itself: sub must hit the zero path everywhere.
	if err := h.DiffPointwise(a, a.Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMulRelinDeterministic(t *testing.T) {
	h := getHarness(t)
	cases := [][2]string{
		{"mul-a-0", "mul-b-0"},
		{"mul-a-1", "mul-b-1"},
	}
	for _, c := range cases {
		ptA := h.PlaintextFromSeed([]byte(c[0]))
		ptB := h.PlaintextFromSeed([]byte(c[1]))
		if err := h.DiffMul(ptA, ptB); err != nil {
			t.Fatalf("seeds %q×%q: %v", c[0], c[1], err)
		}
	}
}

func TestDiffAddDeterministic(t *testing.T) {
	h := getHarness(t)
	ptA := h.PlaintextFromSeed([]byte("add-a"))
	ptB := h.PlaintextFromSeed([]byte("add-b"))
	if err := h.DiffAdd(ptA, ptB); err != nil {
		t.Fatal(err)
	}
}

var (
	ckksHarnessOnce sync.Once
	ckksHarness     *CKKSHarness
	ckksHarnessErr  error
)

// getCKKSHarness shares one CKKS harness across the deterministic tests and
// the fuzz seed corpus, like getHarness does for BFV.
func getCKKSHarness(t testing.TB) *CKKSHarness {
	t.Helper()
	ckksHarnessOnce.Do(func() {
		ckksHarness, ckksHarnessErr = NewCKKS(ckks.TestConfig(), 42)
	})
	if ckksHarnessErr != nil {
		t.Fatal(ckksHarnessErr)
	}
	return ckksHarness
}

// TestDiffCKKSMulRescaleDeterministic walks MulRescale down the whole chain
// for a couple of pinned seed pairs: the accelerator must match the
// software evaluator bit for bit at every level.
func TestDiffCKKSMulRescaleDeterministic(t *testing.T) {
	h := getCKKSHarness(t)
	for _, c := range [][2]string{{"ckks-a-0", "ckks-b-0"}, {"ckks-a-1", "ckks-b-1"}} {
		ca, err := h.CiphertextFromSeed([]byte(c[0]))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := h.CiphertextFromSeed([]byte(c[1]))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.DiffMulRescale(ca, cb); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
}
