package difftest

import (
	"fmt"

	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/sampler"
)

// CKKSHarness is the approximate-arithmetic differential rig: the same slot
// vectors pushed through the pure-software ckks.Evaluator and the scheduled
// chain accelerator, requiring bit-identical ciphertexts. CKKS is exact as
// a computation on residues — the approximation lives in the encoding — so
// the hardware path has no tolerance to hide behind.
type CKKSHarness struct {
	Params *ckks.Params

	SK  *ckks.SecretKey
	Enc *ckks.Encryptor
	Dec *ckks.Decryptor
	Ev  *ckks.Evaluator
	Cod *ckks.Encoder
	RK  *ckks.RelinKey
	Acc *core.CKKSAccelerator
}

// NewCKKS builds a CKKS differential harness over cfg with deterministic
// keys from keySeed.
func NewCKKS(cfg ckks.Config, keySeed uint64) (*CKKSHarness, error) {
	params, err := ckks.NewParams(cfg)
	if err != nil {
		return nil, err
	}
	acc, err := core.NewCKKS(params, 1)
	if err != nil {
		return nil, err
	}
	prng := sampler.NewPRNG(keySeed)
	kg := ckks.NewKeyGenerator(params, prng)
	sk, pk, rk := kg.GenKeys()
	return &CKKSHarness{
		Params: params,
		SK:     sk,
		Enc:    ckks.NewEncryptor(params, pk, prng),
		Dec:    ckks.NewDecryptor(params, sk),
		Ev:     ckks.NewEvaluator(params),
		Cod:    ckks.NewEncoder(params),
		RK:     rk,
		Acc:    acc,
	}, nil
}

// CiphertextFromSeed derives a fresh max-level ciphertext whose slots are
// deterministic values in [-1, 1) expanded from the byte seed.
func (h *CKKSHarness) CiphertextFromSeed(seed []byte) (*ckks.Ciphertext, error) {
	next := splitmix64(seed)
	vals := make([]float64, h.Params.Slots())
	for i := range vals {
		vals[i] = float64(int64(next()%2000))/1000.0 - 1.0
	}
	pt, err := h.Cod.Encode(vals, h.Params.MaxLevel(), h.Params.DefaultScale())
	if err != nil {
		return nil, err
	}
	return h.Enc.Encrypt(pt), nil
}

// DiffMulRescale multiplies the two ciphertexts with relinearization and
// the trailing chain Rescale on the scheduled accelerator and in pure
// software, and requires bit-identical ciphertexts (scale included) and
// bit-identical decryptions — at every chain level down to 1, by squaring
// the software result and re-diffing until the chain is spent.
func (h *CKKSHarness) DiffMulRescale(ca, cb *ckks.Ciphertext) error {
	for ca.Level() >= 1 {
		sw := h.Ev.Rescale(h.Ev.Mul(ca, cb, h.RK))
		hw, _, err := h.Acc.Mul(ca, cb, h.RK)
		if err != nil {
			return err
		}
		if !hw.Equal(sw) {
			return fmt.Errorf("level %d: accelerator MulRescale ciphertext differs from software", ca.Level())
		}
		if !h.Dec.Decrypt(hw).Value.Equal(h.Dec.Decrypt(sw).Value) {
			return fmt.Errorf("level %d: accelerator and software decryptions differ", ca.Level())
		}
		ca, cb = sw, sw // descend the chain by squaring
	}
	return nil
}
