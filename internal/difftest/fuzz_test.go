package difftest

import "testing"

// Fuzz targets: `go test` runs the seed corpus as regression vectors;
// `go test -fuzz FuzzDiffTransform ./internal/difftest` explores further.
// Each target derives both sides' inputs from the fuzz bytes through the
// same deterministic expander, so any divergence between the software
// kernels and the simulated hardware is reproducible from the corpus entry.

func FuzzDiffTransform(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("seed"))
	f.Add([]byte{0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, seed []byte) {
		h := getHarness(t)
		if err := h.DiffTransform(h.FullPolyFromSeed(seed)); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzDiffPointwise(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("a"), []byte("b"))
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, sa, sb []byte) {
		h := getHarness(t)
		if err := h.DiffPointwise(h.FullPolyFromSeed(sa), h.FullPolyFromSeed(sb)); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzDiffMulRelin(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("x"), []byte("y"))
	f.Fuzz(func(t *testing.T, sa, sb []byte) {
		h := getHarness(t)
		if err := h.DiffMul(h.PlaintextFromSeed(sa), h.PlaintextFromSeed(sb)); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzDiffCKKSMulRescale(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("x"), []byte("y"))
	f.Fuzz(func(t *testing.T, sa, sb []byte) {
		h := getCKKSHarness(t)
		ca, err := h.CiphertextFromSeed(sa)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := h.CiphertextFromSeed(sb)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.DiffMulRescale(ca, cb); err != nil {
			t.Fatal(err)
		}
	})
}
