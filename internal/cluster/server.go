package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/fv"
)

// Server exposes the existing wire protocol in front of the ring: clients
// speak to it exactly as they would to one heserver (v1 or v2), and every
// request is routed to the backend owning its tenant. This is what
// cmd/herouter serves. The accept/drain skeleton mirrors cloud.Server.
type Server struct {
	Params *fv.Params
	Router *Router
	Logger *log.Logger
	// NodeID names the router in CmdInfo replies.
	NodeID string
	// ReadTimeout overrides cloud.DefaultReadTimeout when positive.
	ReadTimeout time.Duration

	ln      net.Listener
	mu      sync.Mutex
	served  uint64
	closing bool
	conns   map[net.Conn]struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
}

// NewServer prepares a protocol front-end over a router.
func NewServer(params *fv.Params, router *Router, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{
		Params: params,
		Router: router,
		Logger: logger,
		conns:  make(map[net.Conn]struct{}),
		quit:   make(chan struct{}),
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Listen binds the address and returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("cluster: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown stops accepting, unblocks idle readers, and waits for in-flight
// exchanges to flush (or ctx to expire).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.quit)
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
	}
	ln := s.ln
	s.mu.Unlock()
	if ln != nil && !already {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Served returns the number of operations routed successfully.
func (s *Server) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	timeout := s.ReadTimeout
	if timeout <= 0 {
		timeout = cloud.DefaultReadTimeout
	}
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		select {
		case <-s.quit:
			return
		default:
		}
		req, err := cloud.ReadRequest(conn, s.Params)
		if err != nil {
			return
		}
		if err := s.serveOne(conn, req); err != nil {
			s.Logger.Printf("cluster: write response: %v", err)
			return
		}
	}
}

// serveOne answers a single request, echoing the client's protocol version
// and request ID whatever the backend exchange did to the request struct.
func (s *Server) serveOne(conn net.Conn, req *cloud.Request) error {
	clientVer, clientID := req.Ver, req.ID
	switch req.Cmd {
	case cloud.CmdInfo:
		info := &cloud.ServerInfo{
			Proto:       cloud.ProtoV2,
			NodeID:      s.NodeID,
			Workers:     s.Router.ring.Size(),
			TenantAware: true,
		}
		return cloud.WriteInfoResponse(conn, clientID, info)
	case cloud.CmdPing:
		// A router is alive when at least one backend is: answer locally so
		// health probes against the router reflect cluster availability.
		ctx, cancel := context.WithTimeout(context.Background(), s.Router.cfg.AttemptTimeout)
		err := s.Router.Ping(ctx)
		cancel()
		resp := &cloud.Response{Ver: clientVer, ID: clientID}
		if err != nil {
			resp.Err = err.Error()
			resp.Code = cloud.CodeUnavailable
		} else {
			resp.Result = fv.NewCiphertext(s.Params, 2)
		}
		return cloud.WriteResponse(conn, s.Params, resp)
	case cloud.CmdAdmin:
		return s.serveAdmin(conn, clientID, req)
	case cloud.CmdKeyExport, cloud.CmdKeyImport:
		// Key migration is node-direct: the router's migration engine dials
		// the data nodes itself, and proxying key blobs through the routing
		// tier would only widen the window where state lives in one place.
		return cloud.WriteBlobError(conn, clientID, cloud.CodeApp,
			"cluster: key export/import is not served at the routing tier")
	case cloud.CmdProgram:
		resp, err := s.Router.DoProgram(context.Background(), req)
		if err != nil {
			out := &cloud.ProgramResponse{ID: clientID, Err: err.Error(), Code: cloud.CodeUnavailable}
			var se *cloud.ServerError
			if errors.As(err, &se) {
				out.Code = se.Code
				out.Err = se.Msg
			}
			return cloud.WriteProgramResponse(conn, s.Params, out)
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		resp.ID = clientID
		return cloud.WriteProgramResponse(conn, s.Params, resp)
	}
	resp, err := s.Router.Do(context.Background(), req)
	if err != nil {
		out := &cloud.Response{Ver: clientVer, ID: clientID, Err: err.Error(), Code: cloud.CodeUnavailable}
		var se *cloud.ServerError
		if errors.As(err, &se) {
			out.Code = se.Code
			out.Err = se.Msg
		}
		return cloud.WriteResponse(conn, s.Params, out)
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	resp.Ver, resp.ID = clientVer, clientID
	return cloud.WriteResponse(conn, s.Params, resp)
}

// serveAdmin applies one membership change (join/leave/drain) to the router
// and acknowledges with the resulting ring and migration totals.
func (s *Server) serveAdmin(conn net.Conn, id uint64, req *cloud.Request) error {
	var areq cloud.AdminRequest
	if err := json.Unmarshal(req.Blob, &areq); err != nil {
		return cloud.WriteBlobError(conn, id, cloud.CodeApp, "cluster: bad admin request: "+err.Error())
	}
	// Membership changes drain and transfer key state; give them the
	// router's full migration budget, not the connection read timeout.
	ctx := context.Background()
	var (
		rep *MigrationReport
		err error
	)
	switch areq.Op {
	case cloud.AdminJoin:
		rep, err = s.Router.Join(ctx, Backend{ID: areq.Node, Addr: areq.Addr})
	case cloud.AdminLeave:
		rep, err = s.Router.Leave(ctx, areq.Node)
	case cloud.AdminDrain:
		rep, err = s.Router.Drain(ctx, areq.Node)
	default:
		err = fmt.Errorf("cluster: unknown admin op %q", areq.Op)
	}
	if err != nil {
		return cloud.WriteBlobError(conn, id, cloud.CodeApp, err.Error())
	}
	reply := &cloud.AdminReply{
		Node:            areq.Node,
		Members:         s.Router.ring.Members(),
		MigratedTenants: rep.Tenants,
		MigratedKeys:    rep.Keys,
	}
	body, err := json.Marshal(reply)
	if err != nil {
		return cloud.WriteBlobError(conn, id, cloud.CodeApp, err.Error())
	}
	s.Logger.Printf("cluster: admin %s %s: members=%v tenants=%d keys=%d",
		areq.Op, areq.Node, reply.Members, rep.Tenants, rep.Keys)
	return cloud.WriteBlobResponse(conn, id, body)
}
