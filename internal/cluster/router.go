package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/fv"
	"repro/internal/obs"
)

// Errors returned by the router.
var (
	// ErrNoBackends means no routable replica exists for the tenant — every
	// candidate's circuit is open.
	ErrNoBackends = errors.New("cluster: no routable backend for tenant")
	// ErrAttemptsExhausted wraps the last attempt's error once the retry
	// budget is spent.
	ErrAttemptsExhausted = errors.New("cluster: retry attempts exhausted")
)

// Backend names one heserver node.
type Backend struct {
	ID   string // ring identity; stable across restarts
	Addr string // host:port of the wire protocol
}

// Config parameterizes NewRouter. Zero values select the documented
// defaults.
type Config struct {
	// Params is the FV parameter set shared by every backend. Required.
	Params *fv.Params
	// Backends is the cluster membership. Required, non-empty, unique IDs.
	Backends []Backend
	// VirtualNodes per member on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// Replicas is the length of each tenant's preference list — the
	// failover candidates walked when the primary is down (default 2,
	// clamped to the membership size).
	Replicas int
	// MaxAttempts bounds how many backends one request may try (default:
	// Replicas). Only idempotent operations are retried, and only on
	// transport failures or retryable (unavailable) server errors.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline layered under the caller's
	// context (default 2s).
	AttemptTimeout time.Duration
	// PoolSize is the idle-connection cap per backend (default 4). Ignored
	// when Mux is set.
	PoolSize int
	// Mux selects multiplexed transport: one shared window-bounded
	// cloud.MuxClient per backend carries every in-flight request on a single
	// socket, completing out of order, instead of one pooled sequential
	// connection per concurrent exchange. A window-exhausted backend is
	// treated like a retryable refusal: the walk fails over to the next
	// replica without feeding the circuit breaker.
	Mux bool
	// LoadAware lets the router demote a tenant's primary in favor of a
	// less-loaded replica when the primary's load score — EWMA attempt
	// latency scaled by queue depth — exceeds LoadSpillFactor times the
	// cheapest candidate's. Placement stays hash-affine for the common case;
	// only hot-spotted tenants spill.
	LoadAware bool
	// LoadSpillFactor is the primary-vs-best load ratio that triggers a
	// spill (default 2.0; values <= 1 are reset to the default).
	LoadSpillFactor float64
	// MigrationTimeout bounds one membership change end to end — planning,
	// key transfers, and cutover (default 15s).
	MigrationTimeout time.Duration
	// DrainTimeout bounds how long a cutover waits for the moved tenants'
	// in-flight requests before flipping anyway (default 2s). Flipping with
	// stragglers in flight is safe — key state is transferred before the
	// flip and never removed from the old owners — so the timeout only
	// bounds gate latency, not correctness.
	DrainTimeout time.Duration
	// Health parameterizes probing and circuit breaking.
	Health HealthConfig
	// Registry receives ring/health/retry counters and per-backend latency
	// histograms (default: a private registry, visible via Stats).
	Registry *obs.Registry
	// Logger, when set, logs backend state transitions.
	Logger *log.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Params == nil {
		return c, errors.New("cluster: Config.Params is required")
	}
	if len(c.Backends) == 0 {
		return c, errors.New("cluster: Config.Backends is required")
	}
	seen := make(map[string]struct{}, len(c.Backends))
	for _, b := range c.Backends {
		if b.ID == "" || b.Addr == "" {
			return c, fmt.Errorf("cluster: backend needs ID and Addr, got %+v", b)
		}
		if _, dup := seen[b.ID]; dup {
			return c, fmt.Errorf("cluster: duplicate backend ID %q", b.ID)
		}
		seen[b.ID] = struct{}{}
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	// Replicas is NOT clamped to the initial membership: the fleet is
	// elastic, and ring lookups clamp to the live size anyway.
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = c.Replicas
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.LoadSpillFactor <= 1 {
		c.LoadSpillFactor = 2.0
	}
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c, nil
}

// Router forwards wire-protocol requests to the backend owning the request's
// tenant, failing over to ring replicas when a node is ejected or an attempt
// fails retryably. It is safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	health *healthManager
	reg    *obs.Registry
	logger *log.Logger
	gates  *gateSet

	mu    sync.RWMutex      // guards addrs and pools against membership changes
	addrs map[string]string // backend ID -> address
	pools map[string]backendPool

	// adminMu serializes membership changes (join/leave/drain): migrations
	// mutate shared routing state in stages and must not interleave.
	adminMu sync.Mutex

	// migrateHook, when set, is called at each stage boundary of a
	// membership change (tests kill nodes at pinned stages).
	hookMu      sync.Mutex
	migrateHook func(stage, tenant string)
}

// NewRouter builds the ring over the membership, a connection pool and a
// health probe loop per backend, and starts probing.
func NewRouter(cfg Config) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		addrs:  make(map[string]string, len(cfg.Backends)),
		pools:  make(map[string]backendPool, len(cfg.Backends)),
		reg:    cfg.Registry,
		logger: cfg.Logger,
		gates:  newGateSet(),
	}
	ids := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		r.ring.Add(b.ID)
		r.addrs[b.ID] = b.Addr
		r.pools[b.ID] = r.newPoolFor(b)
		ids = append(ids, b.ID)
	}
	r.health = newHealthManager(cfg.Health, ids, r.probe, r.reg, r.onStateChange)
	r.health.start()
	return r, nil
}

// newPoolFor builds the transport pool for one backend.
func (r *Router) newPoolFor(b Backend) backendPool {
	addr := b.Addr
	if r.cfg.Mux {
		return newMuxPool(func() (*cloud.MuxClient, error) {
			return cloud.DialMux(addr, r.cfg.Params)
		})
	}
	return newConnPool(r.cfg.PoolSize, func() (*cloud.Client, error) {
		return cloud.Dial(addr, r.cfg.Params)
	})
}

// pool returns the backend's transport pool, nil when the node is unknown.
func (r *Router) pool(id string) backendPool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pools[id]
}

// addr returns the backend's dial address, "" when the node is unknown.
func (r *Router) addr(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.addrs[id]
}

// Close stops the health probes and drops every pooled connection.
func (r *Router) Close() error {
	r.health.stop()
	r.mu.Lock()
	pools := r.pools
	r.pools = make(map[string]backendPool)
	r.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	return nil
}

func (r *Router) onStateChange(id string, from, to State) {
	if r.logger != nil {
		r.logger.Printf("cluster: backend %s %s -> %s", id, from, to)
	}
}

// probe is the health check: one Ping over a pooled connection.
func (r *Router) probe(ctx context.Context, id string) error {
	p := r.pool(id)
	if p == nil {
		return fmt.Errorf("cluster: unknown backend %s", id)
	}
	cl, err := p.get()
	if err != nil {
		return err
	}
	err = cl.PingCtx(ctx)
	p.put(cl) // put closes it if the ping broke the stream
	return err
}

// Candidates returns the tenant's routable preference list, Replicas long
// when enough healthy nodes exist: the full ring walk is filtered through
// the circuit breakers BEFORE slicing, so a tenant whose hash-primary is
// ejected still gets a full candidate set instead of a truncated one. With
// every node ejected it degrades to the unfiltered list so callers can
// still attempt (and count) the failures.
func (r *Router) Candidates(tenant string) []string {
	c, _, _ := r.candidatesFor(tenant)
	return c
}

// candidatesFor computes Candidates and additionally reports whether the
// hash-primary was displaced by health filtering (the caller counts these
// as reroutes) and whether any routable node exists at all.
func (r *Router) candidatesFor(tenant string) (list []string, rerouted, routable bool) {
	full := r.ring.Lookup(tenant, 0) // entire preference order
	if len(full) == 0 {
		return nil, false, false
	}
	n := r.cfg.Replicas
	if n > len(full) {
		n = len(full)
	}
	list = make([]string, 0, n)
	for _, node := range full {
		if r.health.routable(node) {
			list = append(list, node)
			if len(list) >= n {
				break
			}
		}
	}
	if len(list) == 0 {
		// Every node is ejected: hand back the raw prefix so callers can
		// still name the candidates in errors and stats.
		return full[:n], false, false
	}
	rerouted = list[0] != full[0]
	if r.cfg.LoadAware && len(list) > 1 {
		best, bestScore := 0, r.health.loadScore(list[0])
		for i := 1; i < len(list); i++ {
			if s := r.health.loadScore(list[i]); s < bestScore {
				best, bestScore = i, s
			}
		}
		if best != 0 && r.health.loadScore(list[0]) > r.cfg.LoadSpillFactor*bestScore {
			list[0], list[best] = list[best], list[0]
			r.reg.Counter("cluster_load_reroutes").Add(1)
		}
	}
	return list, rerouted, true
}

// isIdempotent reports whether a command may be retried on a replica after
// a failure whose outcome is unknown. Every current op — including a whole
// program, which is a pure function of its inputs — may be; the check is
// the seam for future stateful commands.
func isIdempotent(cmd uint8) bool {
	switch cmd {
	case cloud.CmdAdd, cloud.CmdMul, cloud.CmdRotate, cloud.CmdPing, cloud.CmdProgram:
		return true
	}
	return false
}

// Do routes one request to the tenant's shard and returns the backend's
// response. Failed attempts — transport errors and retryable server errors —
// fail over to the next replica in the preference list, bounded by
// MaxAttempts and the caller's context; deterministic server errors (e.g. a
// missing evaluation key) return immediately. The response's BackendID is
// recorded in the router's per-backend latency histograms.
func (r *Router) Do(ctx context.Context, req *cloud.Request) (*cloud.Response, error) {
	return routeWithFailover(r, ctx, req.Tenant, req.Cmd,
		func(ctx context.Context, cl conn) (*cloud.Response, error) {
			return cl.Do(ctx, req)
		})
}

// DoProgram routes one compiled-program request to the tenant's shard with
// the same failover walk as Do: a whole program is one admission unit, one
// wire exchange, and — being a pure function of its inputs — one idempotent
// retry unit.
func (r *Router) DoProgram(ctx context.Context, req *cloud.Request) (*cloud.ProgramResponse, error) {
	return routeWithFailover(r, ctx, req.Tenant, cloud.CmdProgram,
		func(ctx context.Context, cl conn) (*cloud.ProgramResponse, error) {
			return cl.DoProgram(ctx, req)
		})
}

// routeWithFailover is the shared failover walk: candidates from the ring,
// health filtering, bounded retries of idempotent commands on transport
// errors and retryable server errors, immediate return on deterministic
// ones. The exchange callback runs one attempt on an already-pooled client.
func routeWithFailover[T any](r *Router, ctx context.Context, tenant string, cmd uint8,
	exchange func(ctx context.Context, cl conn) (T, error)) (T, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	r.reg.Counter("cluster_requests").Add(1)
	// Park behind the tenant's gate while a migration is moving its key
	// state; on resume the candidates below reflect the post-flip ring.
	waited, err := r.gates.enter(ctx, tenant)
	if waited {
		r.reg.Counter("cluster_gated_requests").Add(1)
	}
	if err != nil {
		r.reg.Counter("cluster_errors").Add(1)
		return zero, err
	}
	defer r.gates.exit(tenant)
	candidates, rerouted, routable := r.candidatesFor(tenant)
	if len(candidates) == 0 {
		r.reg.Counter("cluster_errors").Add(1)
		return zero, ErrNoBackends
	}
	if !routable {
		r.reg.Counter("cluster_errors").Add(1)
		return zero, fmt.Errorf("%w %q (candidates %v all ejected)", ErrNoBackends, tenant, candidates)
	}
	if rerouted {
		// The tenant's primary is ejected; a replica takes over.
		r.reg.Counter("cluster_reroutes").Add(1)
	}
	var (
		lastErr  error
		attempts int
	)
	for _, node := range candidates {
		if err := ctx.Err(); err != nil {
			r.reg.Counter("cluster_errors").Add(1)
			return zero, err
		}
		if attempts >= r.cfg.MaxAttempts {
			break
		}
		if attempts > 0 {
			r.reg.Counter("cluster_retries").Add(1)
		}
		attempts++
		resp, err := tryOn(r, ctx, node, exchange)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var se *cloud.ServerError
		if errors.As(err, &se) {
			if !se.Retryable() {
				// Deterministic application error: every replica would fail
				// the same way.
				r.reg.Counter("cluster_errors").Add(1)
				return zero, err
			}
			if se.Code == cloud.CodeIntegrity {
				// The backend caught corrupted co-processor state; the next
				// replica recomputes from the pristine operands.
				r.reg.Counter("cluster_integrity_reroutes").Add(1)
			}
		}
		if !isIdempotent(cmd) {
			r.reg.Counter("cluster_errors").Add(1)
			return zero, err
		}
	}
	r.reg.Counter("cluster_errors").Add(1)
	if lastErr == nil {
		return zero, fmt.Errorf("%w %q (candidates %v all ejected)", ErrNoBackends, tenant, candidates)
	}
	return zero, fmt.Errorf("%w after %d attempt(s): %w", ErrAttemptsExhausted, attempts, lastErr)
}

// tryOn runs one attempt against one backend under the per-attempt deadline,
// reporting the outcome to the health manager.
func tryOn[T any](r *Router, ctx context.Context, node string,
	exchange func(ctx context.Context, cl conn) (T, error)) (T, error) {
	var zero T
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	p := r.pool(node)
	if p == nil {
		err := fmt.Errorf("cluster: unknown backend %s", node)
		r.health.reportFailure(node, err)
		return zero, err
	}
	cl, err := p.get()
	if err != nil {
		r.health.reportFailure(node, err)
		return zero, fmt.Errorf("cluster: dial %s: %w", node, err)
	}
	r.health.incInflight(node)
	start := time.Now()
	resp, err := exchange(actx, cl)
	elapsed := time.Since(start)
	r.health.decInflight(node)
	r.health.observe(node, elapsed)
	r.reg.Histogram("cluster_backend_latency:" + node).Observe(elapsed)
	p.put(cl) // closes it when the exchange broke the stream
	if err != nil {
		var se *cloud.ServerError
		if errors.As(err, &se) || errors.Is(err, cloud.ErrWindowExhausted) {
			// The node answered (or our own mux window is full — local
			// backpressure, not node failure): it is alive. Only
			// transport-level failures feed the circuit breaker.
			r.health.reportSuccess(node)
			return zero, err
		}
		r.health.reportFailure(node, err)
		return zero, fmt.Errorf("cluster: backend %s: %w", node, err)
	}
	r.health.reportSuccess(node)
	return resp, nil
}

// Ping checks that at least one routable backend answers. It walks the
// membership in sorted order.
func (r *Router) Ping(ctx context.Context) error {
	var lastErr error
	for _, node := range r.ring.Members() {
		if !r.health.routable(node) {
			continue
		}
		actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		err := r.probe(actx, node)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		return ErrNoBackends
	}
	return lastErr
}

// RouterStats is a point-in-time snapshot of membership, per-backend health,
// and the router's counters and latency histograms.
type RouterStats struct {
	Members  []string        `json:"members"`
	Backends []BackendStatus `json:"backends"`
	Obs      obs.Snapshot    `json:"obs"`
}

// Stats snapshots the router.
func (r *Router) Stats() RouterStats {
	members := r.ring.Members()
	s := RouterStats{Members: members, Obs: r.reg.Snapshot()}
	for _, id := range members {
		st := r.health.status(id)
		st.Addr = r.addr(id)
		s.Backends = append(s.Backends, st)
	}
	return s
}
