package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/cloud"
	"repro/internal/fv"
	"repro/internal/obs"
)

// Errors returned by the router.
var (
	// ErrNoBackends means no routable replica exists for the tenant — every
	// candidate's circuit is open.
	ErrNoBackends = errors.New("cluster: no routable backend for tenant")
	// ErrAttemptsExhausted wraps the last attempt's error once the retry
	// budget is spent.
	ErrAttemptsExhausted = errors.New("cluster: retry attempts exhausted")
)

// Backend names one heserver node.
type Backend struct {
	ID   string // ring identity; stable across restarts
	Addr string // host:port of the wire protocol
}

// Config parameterizes NewRouter. Zero values select the documented
// defaults.
type Config struct {
	// Params is the FV parameter set shared by every backend. Required.
	Params *fv.Params
	// Backends is the cluster membership. Required, non-empty, unique IDs.
	Backends []Backend
	// VirtualNodes per member on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// Replicas is the length of each tenant's preference list — the
	// failover candidates walked when the primary is down (default 2,
	// clamped to the membership size).
	Replicas int
	// MaxAttempts bounds how many backends one request may try (default:
	// Replicas). Only idempotent operations are retried, and only on
	// transport failures or retryable (unavailable) server errors.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline layered under the caller's
	// context (default 2s).
	AttemptTimeout time.Duration
	// PoolSize is the idle-connection cap per backend (default 4). Ignored
	// when Mux is set.
	PoolSize int
	// Mux selects multiplexed transport: one shared window-bounded
	// cloud.MuxClient per backend carries every in-flight request on a single
	// socket, completing out of order, instead of one pooled sequential
	// connection per concurrent exchange. A window-exhausted backend is
	// treated like a retryable refusal: the walk fails over to the next
	// replica without feeding the circuit breaker.
	Mux bool
	// Health parameterizes probing and circuit breaking.
	Health HealthConfig
	// Registry receives ring/health/retry counters and per-backend latency
	// histograms (default: a private registry, visible via Stats).
	Registry *obs.Registry
	// Logger, when set, logs backend state transitions.
	Logger *log.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Params == nil {
		return c, errors.New("cluster: Config.Params is required")
	}
	if len(c.Backends) == 0 {
		return c, errors.New("cluster: Config.Backends is required")
	}
	seen := make(map[string]struct{}, len(c.Backends))
	for _, b := range c.Backends {
		if b.ID == "" || b.Addr == "" {
			return c, fmt.Errorf("cluster: backend needs ID and Addr, got %+v", b)
		}
		if _, dup := seen[b.ID]; dup {
			return c, fmt.Errorf("cluster: duplicate backend ID %q", b.ID)
		}
		seen[b.ID] = struct{}{}
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Backends) {
		c.Replicas = len(c.Backends)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = c.Replicas
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c, nil
}

// Router forwards wire-protocol requests to the backend owning the request's
// tenant, failing over to ring replicas when a node is ejected or an attempt
// fails retryably. It is safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	addrs  map[string]string // backend ID -> address
	pools  map[string]backendPool
	health *healthManager
	reg    *obs.Registry
	logger *log.Logger
}

// NewRouter builds the ring over the membership, a connection pool and a
// health probe loop per backend, and starts probing.
func NewRouter(cfg Config) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		addrs:  make(map[string]string, len(cfg.Backends)),
		pools:  make(map[string]backendPool, len(cfg.Backends)),
		reg:    cfg.Registry,
		logger: cfg.Logger,
	}
	ids := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		b := b
		r.ring.Add(b.ID)
		r.addrs[b.ID] = b.Addr
		if cfg.Mux {
			r.pools[b.ID] = newMuxPool(func() (*cloud.MuxClient, error) {
				return cloud.DialMux(b.Addr, cfg.Params)
			})
		} else {
			r.pools[b.ID] = newConnPool(cfg.PoolSize, func() (*cloud.Client, error) {
				return cloud.Dial(b.Addr, cfg.Params)
			})
		}
		ids = append(ids, b.ID)
	}
	r.health = newHealthManager(cfg.Health, ids, r.probe, r.reg, r.onStateChange)
	r.health.start()
	return r, nil
}

// Close stops the health probes and drops every pooled connection.
func (r *Router) Close() error {
	r.health.stop()
	for _, p := range r.pools {
		p.close()
	}
	return nil
}

func (r *Router) onStateChange(id string, from, to State) {
	if r.logger != nil {
		r.logger.Printf("cluster: backend %s %s -> %s", id, from, to)
	}
}

// probe is the health check: one Ping over a pooled connection.
func (r *Router) probe(ctx context.Context, id string) error {
	cl, err := r.pools[id].get()
	if err != nil {
		return err
	}
	err = cl.PingCtx(ctx)
	r.pools[id].put(cl) // put closes it if the ping broke the stream
	return err
}

// Candidates returns the tenant's preference list (primary first), before
// health filtering.
func (r *Router) Candidates(tenant string) []string {
	return r.ring.Lookup(tenant, r.cfg.Replicas)
}

// isIdempotent reports whether a command may be retried on a replica after
// a failure whose outcome is unknown. Every current op — including a whole
// program, which is a pure function of its inputs — may be; the check is
// the seam for future stateful commands.
func isIdempotent(cmd uint8) bool {
	switch cmd {
	case cloud.CmdAdd, cloud.CmdMul, cloud.CmdRotate, cloud.CmdPing, cloud.CmdProgram:
		return true
	}
	return false
}

// Do routes one request to the tenant's shard and returns the backend's
// response. Failed attempts — transport errors and retryable server errors —
// fail over to the next replica in the preference list, bounded by
// MaxAttempts and the caller's context; deterministic server errors (e.g. a
// missing evaluation key) return immediately. The response's BackendID is
// recorded in the router's per-backend latency histograms.
func (r *Router) Do(ctx context.Context, req *cloud.Request) (*cloud.Response, error) {
	return routeWithFailover(r, ctx, req.Tenant, req.Cmd,
		func(ctx context.Context, cl conn) (*cloud.Response, error) {
			return cl.Do(ctx, req)
		})
}

// DoProgram routes one compiled-program request to the tenant's shard with
// the same failover walk as Do: a whole program is one admission unit, one
// wire exchange, and — being a pure function of its inputs — one idempotent
// retry unit.
func (r *Router) DoProgram(ctx context.Context, req *cloud.Request) (*cloud.ProgramResponse, error) {
	return routeWithFailover(r, ctx, req.Tenant, cloud.CmdProgram,
		func(ctx context.Context, cl conn) (*cloud.ProgramResponse, error) {
			return cl.DoProgram(ctx, req)
		})
}

// routeWithFailover is the shared failover walk: candidates from the ring,
// health filtering, bounded retries of idempotent commands on transport
// errors and retryable server errors, immediate return on deterministic
// ones. The exchange callback runs one attempt on an already-pooled client.
func routeWithFailover[T any](r *Router, ctx context.Context, tenant string, cmd uint8,
	exchange func(ctx context.Context, cl conn) (T, error)) (T, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	r.reg.Counter("cluster_requests").Add(1)
	candidates := r.ring.Lookup(tenant, r.cfg.Replicas)
	if len(candidates) == 0 {
		r.reg.Counter("cluster_errors").Add(1)
		return zero, ErrNoBackends
	}
	var (
		lastErr  error
		attempts int
	)
	for i, node := range candidates {
		if err := ctx.Err(); err != nil {
			r.reg.Counter("cluster_errors").Add(1)
			return zero, err
		}
		if attempts >= r.cfg.MaxAttempts {
			break
		}
		if !r.health.routable(node) {
			if i == 0 {
				// The tenant's primary is ejected; a replica takes over.
				r.reg.Counter("cluster_reroutes").Add(1)
			}
			continue
		}
		if attempts > 0 {
			r.reg.Counter("cluster_retries").Add(1)
		}
		attempts++
		resp, err := tryOn(r, ctx, node, exchange)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var se *cloud.ServerError
		if errors.As(err, &se) {
			if !se.Retryable() {
				// Deterministic application error: every replica would fail
				// the same way.
				r.reg.Counter("cluster_errors").Add(1)
				return zero, err
			}
			if se.Code == cloud.CodeIntegrity {
				// The backend caught corrupted co-processor state; the next
				// replica recomputes from the pristine operands.
				r.reg.Counter("cluster_integrity_reroutes").Add(1)
			}
		}
		if !isIdempotent(cmd) {
			r.reg.Counter("cluster_errors").Add(1)
			return zero, err
		}
	}
	r.reg.Counter("cluster_errors").Add(1)
	if lastErr == nil {
		return zero, fmt.Errorf("%w %q (candidates %v all ejected)", ErrNoBackends, tenant, candidates)
	}
	return zero, fmt.Errorf("%w after %d attempt(s): %w", ErrAttemptsExhausted, attempts, lastErr)
}

// tryOn runs one attempt against one backend under the per-attempt deadline,
// reporting the outcome to the health manager.
func tryOn[T any](r *Router, ctx context.Context, node string,
	exchange func(ctx context.Context, cl conn) (T, error)) (T, error) {
	var zero T
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	cl, err := r.pools[node].get()
	if err != nil {
		r.health.reportFailure(node, err)
		return zero, fmt.Errorf("cluster: dial %s: %w", node, err)
	}
	start := time.Now()
	resp, err := exchange(actx, cl)
	r.reg.Histogram("cluster_backend_latency:" + node).Observe(time.Since(start))
	r.pools[node].put(cl) // closes it when the exchange broke the stream
	if err != nil {
		var se *cloud.ServerError
		if errors.As(err, &se) || errors.Is(err, cloud.ErrWindowExhausted) {
			// The node answered (or our own mux window is full — local
			// backpressure, not node failure): it is alive. Only
			// transport-level failures feed the circuit breaker.
			r.health.reportSuccess(node)
			return zero, err
		}
		r.health.reportFailure(node, err)
		return zero, fmt.Errorf("cluster: backend %s: %w", node, err)
	}
	r.health.reportSuccess(node)
	return resp, nil
}

// Ping checks that at least one routable backend answers. It walks the
// membership in sorted order.
func (r *Router) Ping(ctx context.Context) error {
	var lastErr error
	for _, node := range r.ring.Members() {
		if !r.health.routable(node) {
			continue
		}
		actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		err := r.probe(actx, node)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		return ErrNoBackends
	}
	return lastErr
}

// RouterStats is a point-in-time snapshot of membership, per-backend health,
// and the router's counters and latency histograms.
type RouterStats struct {
	Members  []string        `json:"members"`
	Backends []BackendStatus `json:"backends"`
	Obs      obs.Snapshot    `json:"obs"`
}

// Stats snapshots the router.
func (r *Router) Stats() RouterStats {
	members := r.ring.Members()
	s := RouterStats{Members: members, Obs: r.reg.Snapshot()}
	for _, id := range members {
		st := r.health.status(id)
		st.Addr = r.addrs[id]
		s.Backends = append(s.Backends, st)
	}
	return s
}
