package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return keys
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		return r
	}
	a, b := build(), build()
	a.Add("n1")
	a.Add("n2")
	a.Add("n3")
	b.Add("n3")
	b.Add("n1")
	b.Add("n2")
	for _, k := range ringKeys(500) {
		ga, gb := a.Lookup(k, 2), b.Lookup(k, 2)
		if len(ga) != 2 || len(gb) != 2 || ga[0] != gb[0] || ga[1] != gb[1] {
			t.Fatalf("placement differs across instances for %q: %v vs %v", k, ga, gb)
		}
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(n)
	}
	for _, k := range ringKeys(200) {
		got := r.Lookup(k, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup(%q, 3) = %v", k, got)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate node in preference list for %q: %v", k, got)
			}
			seen[n] = true
		}
	}
	// Asking for more replicas than members clamps.
	if got := r.Lookup("x", 10); len(got) != 4 {
		t.Fatalf("clamped lookup returned %d nodes, want 4", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Lookup(k, 1)[0]]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): ring is badly unbalanced", n, c, len(keys), fair)
		}
	}
}

// TestRingMinimalRebalance is the consistent-hashing contract: removing a
// node remaps only the keys that node owned, and adding it back restores
// the original placement exactly.
func TestRingMinimalRebalance(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k, 1)[0]
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		now := r.Lookup(k, 1)[0]
		if before[k] == "n2" {
			moved++
			if now == "n2" {
				t.Fatalf("key %q still maps to removed node", k)
			}
		} else if now != before[k] {
			t.Fatalf("key %q moved from %s to %s although its node stayed in the ring", k, before[k], now)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; test is vacuous")
	}

	r.Add("n2")
	for _, k := range keys {
		if got := r.Lookup(k, 1)[0]; got != before[k] {
			t.Fatalf("key %q at %s after re-add, want original %s", k, got, before[k])
		}
	}
}

// TestRingConcurrentResizeVsLookup hammers Lookup from many goroutines while
// membership churns — the elastic-cluster access pattern. Run under -race;
// the assertions check only invariants that hold at every intermediate
// membership (no duplicates, nodes from the known universe).
func TestRingConcurrentResizeVsLookup(t *testing.T) {
	r := NewRing(32)
	universe := make(map[string]bool)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("n%d", i)
		universe[id] = true
		if i < 4 {
			r.Add(id)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := ringKeys(50)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got := r.Lookup(keys[(g*13+i)%len(keys)], 3)
				seen := map[string]bool{}
				for _, n := range got {
					if !universe[n] {
						t.Errorf("lookup returned unknown node %q", n)
						return
					}
					if seen[n] {
						t.Errorf("duplicate node %q in %v", n, got)
						return
					}
					seen[n] = true
				}
			}
		}(g)
	}
	// Churn: nodes 4..7 repeatedly join and leave while lookups run.
	for round := 0; round < 50; round++ {
		for i := 4; i < 8; i++ {
			r.Add(fmt.Sprintf("n%d", i))
		}
		for i := 4; i < 8; i++ {
			r.Remove(fmt.Sprintf("n%d", i))
		}
	}
	close(stop)
	wg.Wait()
	if r.Size() != 4 {
		t.Fatalf("membership %d after churn, want 4", r.Size())
	}
}

// TestRingMinimalMovementOnGrowth is the property the key-state migration
// relies on: growing the ring 1 -> 8 nodes, each join changes a tenant's
// candidate set only by inserting the new node — every node it keeps was
// already in the old set, so an unaffected tenant's set is bit-identical
// and a migration only ever copies keys TO the joiner.
func TestRingMinimalMovementOnGrowth(t *testing.T) {
	const replicas = 2
	r := NewRing(64)
	keys := ringKeys(500)
	r.Add("n0")
	for n := 1; n < 8; n++ {
		before := make(map[string][]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k, replicas)
		}
		joiner := fmt.Sprintf("n%d", n)
		r.Add(joiner)
		touched := 0
		for _, k := range keys {
			after := r.Lookup(k, replicas)
			old := map[string]bool{}
			for _, v := range before[k] {
				old[v] = true
			}
			gained := false
			for _, v := range after {
				if v == joiner {
					gained = true
				} else if !old[v] {
					t.Fatalf("size %d->%d: tenant %q gained node %s that is neither old nor the joiner: %v -> %v",
						n, n+1, k, v, before[k], after)
				}
			}
			if gained {
				touched++
			} else if len(after) != len(before[k]) {
				t.Fatalf("size %d->%d: tenant %q set resized without gaining the joiner: %v -> %v",
					n, n+1, k, before[k], after)
			} else {
				for i := range after {
					if after[i] != before[k][i] {
						t.Fatalf("size %d->%d: unaffected tenant %q reordered: %v -> %v",
							n, n+1, k, before[k], after)
					}
				}
			}
		}
		if n >= replicas && touched == 0 {
			t.Fatalf("size %d->%d: joiner attracted no tenants; growth is vacuous", n, n+1)
		}
		if n >= replicas && touched > len(keys)*2*replicas/(n+1) {
			t.Fatalf("size %d->%d: joiner moved %d of %d tenants, far above the ~%d fair share",
				n, n+1, touched, len(keys), len(keys)*replicas/(n+1))
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("x", 1); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	r.Add("n1")
	r.Add("n1") // duplicate add must not double the vnodes
	if got := len(r.points); got != DefaultVirtualNodes {
		t.Fatalf("duplicate Add produced %d points, want %d", got, DefaultVirtualNodes)
	}
	r.Remove("ghost") // removing a non-member is a no-op
	if r.Size() != 1 {
		t.Fatalf("membership %d after no-op remove, want 1", r.Size())
	}
}
