package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return keys
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		return r
	}
	a, b := build(), build()
	a.Add("n1")
	a.Add("n2")
	a.Add("n3")
	b.Add("n3")
	b.Add("n1")
	b.Add("n2")
	for _, k := range ringKeys(500) {
		ga, gb := a.Lookup(k, 2), b.Lookup(k, 2)
		if len(ga) != 2 || len(gb) != 2 || ga[0] != gb[0] || ga[1] != gb[1] {
			t.Fatalf("placement differs across instances for %q: %v vs %v", k, ga, gb)
		}
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(n)
	}
	for _, k := range ringKeys(200) {
		got := r.Lookup(k, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup(%q, 3) = %v", k, got)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate node in preference list for %q: %v", k, got)
			}
			seen[n] = true
		}
	}
	// Asking for more replicas than members clamps.
	if got := r.Lookup("x", 10); len(got) != 4 {
		t.Fatalf("clamped lookup returned %d nodes, want 4", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Lookup(k, 1)[0]]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): ring is badly unbalanced", n, c, len(keys), fair)
		}
	}
}

// TestRingMinimalRebalance is the consistent-hashing contract: removing a
// node remaps only the keys that node owned, and adding it back restores
// the original placement exactly.
func TestRingMinimalRebalance(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k, 1)[0]
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		now := r.Lookup(k, 1)[0]
		if before[k] == "n2" {
			moved++
			if now == "n2" {
				t.Fatalf("key %q still maps to removed node", k)
			}
		} else if now != before[k] {
			t.Fatalf("key %q moved from %s to %s although its node stayed in the ring", k, before[k], now)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; test is vacuous")
	}

	r.Add("n2")
	for _, k := range keys {
		if got := r.Lookup(k, 1)[0]; got != before[k] {
			t.Fatalf("key %q at %s after re-add, want original %s", k, got, before[k])
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("x", 1); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	r.Add("n1")
	r.Add("n1") // duplicate add must not double the vnodes
	if got := len(r.points); got != DefaultVirtualNodes {
		t.Fatalf("duplicate Add produced %d points, want %d", got, DefaultVirtualNodes)
	}
	r.Remove("ghost") // removing a non-member is a no-op
	if r.Size() != 1 {
		t.Fatalf("membership %d after no-op remove, want 1", r.Size())
	}
}
