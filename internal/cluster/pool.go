package cluster

import (
	"sync"

	"repro/internal/cloud"
)

// connPool keeps idle protocol connections to one backend. A cloud.Client
// is single-stream (one request/response in flight), so the pool hands out
// exclusive ownership: get removes a connection, put returns it. Broken
// connections (transport error, cancellation mid-exchange) are closed
// instead of pooled, and dialing happens on demand — after a backend dies,
// the pool holds nothing and every attempt fails fast at dial time.
type connPool struct {
	dial func() (*cloud.Client, error)

	mu     sync.Mutex
	idle   []*cloud.Client
	max    int // idle cap; extra returns are closed
	closed bool
}

func newConnPool(max int, dial func() (*cloud.Client, error)) *connPool {
	if max <= 0 {
		max = 4
	}
	return &connPool{dial: dial, max: max}
}

// get returns an idle connection or dials a new one.
func (p *connPool) get() (*cloud.Client, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 && !p.closed {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.dial()
}

// put returns a connection to the pool; broken connections and overflow
// beyond the idle cap are closed.
func (p *connPool) put(c *cloud.Client) {
	if c == nil {
		return
	}
	if c.Broken() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.max {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// close drops every idle connection and refuses future returns.
func (p *connPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
