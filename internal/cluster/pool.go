package cluster

import (
	"context"
	"errors"
	"sync"

	"repro/internal/cloud"
)

// conn is the per-attempt connection surface the router needs. Both the
// sequential *cloud.Client and the multiplexed *cloud.MuxClient satisfy it,
// so the failover walk is oblivious to which transport a backend pool hands
// out.
type conn interface {
	Do(ctx context.Context, req *cloud.Request) (*cloud.Response, error)
	DoProgram(ctx context.Context, req *cloud.Request) (*cloud.ProgramResponse, error)
	PingCtx(ctx context.Context) error
	Broken() bool
	Close() error
}

// backendPool hands out connections to one backend. get/put bracket one
// attempt; close drops everything.
type backendPool interface {
	get() (conn, error)
	put(conn)
	close()
}

// connPool keeps idle protocol connections to one backend. A cloud.Client
// is single-stream (one request/response in flight), so the pool hands out
// exclusive ownership: get removes a connection, put returns it. Broken
// connections (transport error, cancellation mid-exchange) are closed
// instead of pooled, and dialing happens on demand — after a backend dies,
// the pool holds nothing and every attempt fails fast at dial time.
type connPool struct {
	dial func() (*cloud.Client, error)

	mu     sync.Mutex
	idle   []*cloud.Client
	max    int // idle cap; extra returns are closed
	closed bool
}

func newConnPool(max int, dial func() (*cloud.Client, error)) *connPool {
	if max <= 0 {
		max = 4
	}
	return &connPool{dial: dial, max: max}
}

// get returns an idle connection or dials a new one.
func (p *connPool) get() (conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 && !p.closed {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.dial()
}

// put returns a connection to the pool; broken connections and overflow
// beyond the idle cap are closed.
func (p *connPool) put(c conn) {
	if c == nil {
		return
	}
	if c.Broken() {
		c.Close()
		return
	}
	cl, ok := c.(*cloud.Client)
	if !ok {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.max {
		p.mu.Unlock()
		cl.Close()
		return
	}
	p.idle = append(p.idle, cl)
	p.mu.Unlock()
}

// close drops every idle connection and refuses future returns.
func (p *connPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// errPoolClosed is returned by a pool after close.
var errPoolClosed = errors.New("cluster: connection pool closed")

// muxPool is the multiplexed counterpart: ONE shared cloud.MuxClient per
// backend carries every concurrent attempt (it is concurrent-safe and
// window-bounded), so N in-flight requests cost one socket instead of N.
// get hands the shared client to any number of callers; put is a no-op —
// a broken client is detected and replaced on the next get, when no
// exchange can be mid-flight on a fresh dial.
type muxPool struct {
	dial func() (*cloud.MuxClient, error)

	mu     sync.Mutex
	cur    *cloud.MuxClient
	closed bool
}

func newMuxPool(dial func() (*cloud.MuxClient, error)) *muxPool {
	return &muxPool{dial: dial}
}

// get returns the backend's shared multiplexed connection, dialing (or
// replacing a broken one) on demand.
func (p *muxPool) get() (conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errPoolClosed
	}
	if p.cur != nil && !p.cur.Broken() {
		return p.cur, nil
	}
	if p.cur != nil {
		p.cur.Close()
		p.cur = nil
	}
	mc, err := p.dial()
	if err != nil {
		return nil, err
	}
	p.cur = mc
	return mc, nil
}

// put is a no-op: the client is shared, and concurrent exchanges may still
// be in flight on it.
func (p *muxPool) put(conn) {}

// close tears down the shared connection.
func (p *muxPool) close() {
	p.mu.Lock()
	cur := p.cur
	p.cur = nil
	p.closed = true
	p.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}
