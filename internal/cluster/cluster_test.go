package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/fv"
	"repro/internal/sampler"
)

// testBackend is one in-process heserver: engine + wire server.
type testBackend struct {
	id   string
	addr string
	eng  *engine.Engine
	srv  *cloud.Server
	done chan error

	mu     sync.Mutex
	killed bool
}

// kill simulates a node crash: the listener closes, open connections get
// their read deadlines slammed (handlers die), and the engine drains. New
// dials are refused, which is exactly what the router's circuit breaker
// must detect.
func (b *testBackend) kill() {
	b.mu.Lock()
	if b.killed {
		b.mu.Unlock()
		return
	}
	b.killed = true
	b.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // do not wait for handlers: a crash is not graceful
	b.srv.Shutdown(ctx)
	drain, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	b.eng.Shutdown(drain)
	dcancel()
	<-b.done
}

type testCluster struct {
	params   *fv.Params
	sk       *fv.SecretKey
	pk       *fv.PublicKey
	rk       *fv.RelinKey
	backends []*testBackend
}

// startCluster boots n in-process backends sharing one deterministic key
// set, with the relin key replicated to every backend under every tenant —
// the full-replication model the cluster layer assumes.
func startCluster(t *testing.T, n int, tenants []string) *testCluster {
	t.Helper()
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	kg := fv.NewKeyGenerator(params, sampler.NewPRNG(99))
	sk, pk, rk := kg.GenKeys()
	tc := &testCluster{params: params, sk: sk, pk: pk, rk: rk}
	for i := 0; i < n; i++ {
		eng, err := engine.New(engine.Config{Params: params, Workers: 2, QueueDepth: 256})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetRelinKey(cloud.DefaultTenant, rk)
		for _, tenant := range tenants {
			eng.SetRelinKey(tenant, rk)
		}
		srv := cloud.NewServer(params, eng, nil)
		srv.NodeID = fmt.Sprintf("node-%d", i)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		b := &testBackend{id: srv.NodeID, addr: addr, eng: eng, srv: srv, done: make(chan error, 1)}
		go func() { b.done <- srv.Serve() }()
		tc.backends = append(tc.backends, b)
	}
	t.Cleanup(func() {
		for _, b := range tc.backends {
			b.mu.Lock()
			killed := b.killed
			b.mu.Unlock()
			if killed {
				continue
			}
			b.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := b.eng.Shutdown(ctx); err != nil {
				t.Errorf("backend %s engine shutdown: %v", b.id, err)
			}
			cancel()
			<-b.done
		}
	})
	return tc
}

func (tc *testCluster) backendList() []Backend {
	out := make([]Backend, 0, len(tc.backends))
	for _, b := range tc.backends {
		out = append(out, Backend{ID: b.id, Addr: b.addr})
	}
	return out
}

func (tc *testCluster) encrypt(t testing.TB, v uint64) *fv.Ciphertext {
	t.Helper()
	enc := fv.NewEncryptor(tc.params, tc.pk, sampler.NewPRNG(v*7+1))
	pt := fv.NewPlaintext(tc.params)
	pt.Coeffs[0] = v % 257
	return enc.Encrypt(pt)
}

func (tc *testCluster) decrypt(ct *fv.Ciphertext) uint64 {
	return fv.NewDecryptor(tc.params, tc.sk).Decrypt(ct).Coeffs[0]
}

func testTenants(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%02d", i)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{},               // no params
		{Params: params}, // no backends
		{Params: params, Backends: []Backend{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}}, // dup ID
		{Params: params, Backends: []Backend{{ID: "", Addr: "x"}}},                        // empty ID
	}
	for i, cfg := range cases {
		if _, err := NewRouter(cfg); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

// TestClusterRoutingAndStickiness: every tenant's requests land on exactly
// one backend (its ring primary) while all nodes are healthy, results
// decrypt correctly, and the shard split actually uses both nodes.
func TestClusterRoutingAndStickiness(t *testing.T) {
	tenants := testTenants(8)
	tc := startCluster(t, 2, tenants)
	client, err := NewClient(Config{
		Params:   tc.params,
		Backends: tc.backendList(),
		Health:   HealthConfig{Interval: 50 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const opsPerTenant = 3
	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tenant := range tenants {
		for i := 0; i < opsPerTenant; i++ {
			prod, hwTime, err := client.Mul(ctx, tenant, a, b)
			if err != nil {
				t.Fatalf("tenant %s: %v", tenant, err)
			}
			if got := tc.decrypt(prod); got != 117 {
				t.Fatalf("tenant %s: 9*13 = %d via cluster", tenant, got)
			}
			if hwTime <= 0 {
				t.Fatalf("tenant %s: no simulated hardware time", tenant)
			}
		}
	}

	// Per-tenant engine stats prove stickiness: each tenant's ops all landed
	// on its ring primary, nowhere else.
	served := map[string]string{} // tenant -> backend id
	usedBackends := map[string]bool{}
	for _, b := range tc.backends {
		for tenant, ts := range b.eng.Stats().PerTenant {
			if prev, dup := served[tenant]; dup {
				t.Fatalf("tenant %s served by both %s and %s while healthy", tenant, prev, b.id)
			}
			if ts.Completed != opsPerTenant {
				t.Fatalf("tenant %s on %s: completed %d, want %d", tenant, b.id, ts.Completed, opsPerTenant)
			}
			if ts.SimCycles == 0 {
				t.Fatalf("tenant %s on %s: no simulated cycles accounted", tenant, b.id)
			}
			served[tenant] = b.id
			usedBackends[b.id] = true
		}
	}
	for _, tenant := range tenants {
		primary := client.Router().Candidates(tenant)[0]
		if served[tenant] != primary {
			t.Fatalf("tenant %s served by %s, ring primary is %s", tenant, served[tenant], primary)
		}
	}
	if len(usedBackends) != 2 {
		t.Fatalf("all 8 tenants hashed onto %d of 2 backends; shard split is degenerate", len(usedBackends))
	}
}

// TestClusterFailoverOnBackendDeath is the failure-injection acceptance
// test: 3 in-process backends under continuous load, one killed mid-load.
// The router must converge (node ejected, its tenants rerouted to ring
// replicas), client-visible errors must stay bounded to the in-flight
// window, and no request may outlive its context deadline.
func TestClusterFailoverOnBackendDeath(t *testing.T) {
	tenants := testTenants(12)
	tc := startCluster(t, 3, tenants)
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    tc.backendList(),
		Replicas:    2,
		MaxAttempts: 3,
		Health: HealthConfig{
			Interval:      20 * time.Millisecond,
			Timeout:       250 * time.Millisecond,
			FailThreshold: 2,
			BackoffMax:    200 * time.Millisecond,
			Seed:          1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	victim := tc.backends[1]
	// Tenants whose ring primary is the victim must keep being served after
	// the kill — that is the reroute the test exists to prove.
	victimTenants := map[string]bool{}
	for _, tenant := range tenants {
		if client.Router().Candidates(tenant)[0] == victim.id {
			victimTenants[tenant] = true
		}
	}
	if len(victimTenants) == 0 {
		t.Fatal("victim owns no tenants; failure injection would be vacuous")
	}

	const (
		loaders    = 4
		opDeadline = 3 * time.Second
	)
	var (
		mu            sync.Mutex
		okBefore      int
		okAfter       int
		clientErrs    []error
		rerouteServed = map[string]bool{} // victim tenants served post-kill
		killed        bool
		maxElapsed    time.Duration
		wrongResults  int
	)
	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; ; i += loaders {
				select {
				case <-stop:
					return
				default:
				}
				tenant := tenants[i%len(tenants)]
				ctx, cancel := context.WithTimeout(context.Background(), opDeadline)
				start := time.Now()
				prod, _, err := client.Mul(ctx, tenant, a, b)
				elapsed := time.Since(start)
				cancel()
				mu.Lock()
				if elapsed > maxElapsed {
					maxElapsed = elapsed
				}
				if err != nil {
					clientErrs = append(clientErrs, fmt.Errorf("tenant %s: %w", tenant, err))
				} else {
					if got := tc.decrypt(prod); got != 117 {
						wrongResults++
					}
					if killed {
						okAfter++
						if victimTenants[tenant] {
							rerouteServed[tenant] = true
						}
					} else {
						okBefore++
					}
				}
				mu.Unlock()
			}
		}(l)
	}

	// Warm-up: let every loader complete work against the full cluster.
	warmDeadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		warm := okBefore >= loaders*2
		mu.Unlock()
		if warm || time.Now().After(warmDeadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	killed = true
	mu.Unlock()
	victim.kill()

	// Convergence: the victim must be ejected and every one of its tenants
	// served by a replica, while load continues.
	convergeDeadline := time.Now().Add(15 * time.Second)
	for {
		ejected := false
		for _, st := range client.Stats().Backends {
			if st.ID == victim.id && st.State == StateEjected.String() {
				ejected = true
			}
		}
		mu.Lock()
		rerouted := len(rerouteServed) == len(victimTenants)
		mu.Unlock()
		if ejected && rerouted {
			break
		}
		if time.Now().After(convergeDeadline) {
			mu.Lock()
			got, want, errs := len(rerouteServed), len(victimTenants), len(clientErrs)
			mu.Unlock()
			close(stop)
			wg.Wait()
			t.Fatalf("no convergence: ejected=%v rerouted=%d/%d errs=%d", ejected, got, want, errs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if wrongResults != 0 {
		t.Fatalf("%d wrong homomorphic results during failover", wrongResults)
	}
	if okBefore == 0 || okAfter == 0 {
		t.Fatalf("load pattern broken: ok before kill %d, after %d", okBefore, okAfter)
	}
	// Bounded error window: only requests in flight at the instant of the
	// crash may surface an error (one per loader at most); the retry layer
	// must absorb everything else.
	if len(clientErrs) > loaders {
		t.Fatalf("%d client-visible errors, want <= %d (the in-flight window): %v",
			len(clientErrs), loaders, clientErrs)
	}
	// No hangs: nothing may outlive its deadline (plus scheduler slack).
	if limit := opDeadline + 2*time.Second; maxElapsed > limit {
		t.Fatalf("a request took %v, deadline was %v", maxElapsed, opDeadline)
	}

	snap := client.Stats()
	for _, st := range snap.Backends {
		if st.ID == victim.id {
			if st.Ejections == 0 {
				t.Fatalf("victim status has no ejections: %+v", st)
			}
		} else if st.State != StateHealthy.String() {
			t.Fatalf("survivor %s in state %s", st.ID, st.State)
		}
	}
	if snap.Obs.Counters["cluster_reroutes"] == 0 {
		t.Fatal("no reroutes counted although the victim's tenants kept being served")
	}
	if snap.Obs.Counters["cluster_ejections"] == 0 {
		t.Fatal("no ejections counted")
	}
}

// TestClusterAllBackendsDown: with every replica's circuit open, requests
// fail fast with ErrNoBackends instead of spinning through dead nodes.
func TestClusterAllBackendsDown(t *testing.T) {
	tc := startCluster(t, 1, nil)
	client, err := NewClient(Config{
		Params:         tc.params,
		Backends:       tc.backendList(),
		AttemptTimeout: 500 * time.Millisecond,
		Health: HealthConfig{
			Interval:      10 * time.Millisecond,
			Timeout:       100 * time.Millisecond,
			FailThreshold: 2,
			Seed:          1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	a, b := tc.encrypt(t, 2), tc.encrypt(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := client.Add(ctx, "x", a, b); err != nil {
		t.Fatalf("healthy cluster refused work: %v", err)
	}

	tc.backends[0].kill()
	deadline := time.Now().Add(10 * time.Second)
	for client.Stats().Backends[0].State != StateEjected.String() {
		if time.Now().After(deadline) {
			t.Fatal("dead backend never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	_, _, err = client.Add(ctx, "x", a, b)
	if err == nil {
		t.Fatal("request succeeded against a fully dead cluster")
	}
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("error %v, want ErrNoBackends", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("fail-fast took %v; the open circuit should answer immediately", e)
	}
	if err := client.Ping(ctx); err == nil {
		t.Fatal("Ping succeeded against a fully dead cluster")
	}
}

// TestClusterProxyServer drives the herouter front-end: a stock cloud.Client
// (v2 and v1) talks to cluster.Server exactly as it would to one heserver,
// and requests come back routed, correct, and version-faithful.
func TestClusterProxyServer(t *testing.T) {
	tenants := testTenants(4)
	tc := startCluster(t, 2, tenants)
	router, err := NewRouter(Config{
		Params:   tc.params,
		Backends: tc.backendList(),
		Health:   HealthConfig{Interval: 50 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	proxy := NewServer(tc.params, router, nil)
	proxy.NodeID = "router-under-test"
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proxy.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := proxy.Shutdown(ctx); err != nil {
			t.Errorf("proxy shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})

	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)

	// A tenant-aware v2 client.
	c2, err := cloud.DialTenant(addr, tc.params, tenants[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("ping through proxy: %v", err)
	}
	prod, hwTime, err := c2.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.decrypt(prod); got != 117 {
		t.Fatalf("9*13 = %d through the proxy", got)
	}
	if hwTime <= 0 {
		t.Fatal("proxy dropped the simulated hardware time")
	}
	info, err := c2.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.TenantAware || info.NodeID != "router-under-test" || info.Workers != 2 {
		t.Fatalf("proxy info = %+v", info)
	}
	// A deterministic application error (missing Galois key) passes through
	// as an error response and must not kill the connection.
	if _, _, err := c2.Rotate(a, 3); err == nil {
		t.Fatal("rotate without a galois key should fail")
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("connection broken after routed error response: %v", err)
	}

	// A legacy v1 client (no tenant concept) rides the default tenant.
	c1, err := cloud.DialV1(addr, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	sum, _, err := c1.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.decrypt(sum); got != 22 {
		t.Fatalf("9+13 = %d through the proxy on protocol v1", got)
	}
	if got := proxy.Served(); got < 2 {
		t.Fatalf("proxy served %d ops, want >= 2", got)
	}
	// The routed work really ran on the backends.
	var backendOps uint64
	for _, b := range tc.backends {
		backendOps += b.srv.Served()
	}
	if backendOps < 2 {
		t.Fatalf("backends served %d ops in total, want >= 2", backendOps)
	}
}

// TestClusterMuxTransport runs the router over multiplexed connections: one
// shared window-bounded socket per backend carries concurrent exchanges from
// many tenants, results stay correct and tenant-sticky, and killing a node
// still fails over to its ring replica.
func TestClusterMuxTransport(t *testing.T) {
	tenants := testTenants(6)
	tc := startCluster(t, 2, tenants)
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    tc.backendList(),
		Mux:         true,
		Replicas:    2,
		MaxAttempts: 3,
		Health: HealthConfig{
			Interval:      20 * time.Millisecond,
			Timeout:       250 * time.Millisecond,
			FailThreshold: 2,
			Seed:          1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Concurrent multiplications from every tenant at once: the per-backend
	// mux connection interleaves them all on one socket per node.
	var wg sync.WaitGroup
	errs := make([]error, len(tenants)*2)
	for round := 0; round < 2; round++ {
		for ti, tenant := range tenants {
			wg.Add(1)
			go func(i int, tenant string, x, y uint64) {
				defer wg.Done()
				prod, _, err := client.Mul(context.Background(), tenant, tc.encrypt(t, x), tc.encrypt(t, y))
				if err != nil {
					errs[i] = fmt.Errorf("tenant %s: %w", tenant, err)
					return
				}
				if got, want := tc.decrypt(prod), x*y%257; got != want {
					errs[i] = fmt.Errorf("tenant %s: %d*%d = %d, want %d", tenant, x, y, got, want)
				}
			}(round*len(tenants)+ti, tenant, uint64(ti+2), uint64(round+3))
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Both backends worked, and each over exactly one mux session: the
	// concurrent load must not have opened a connection per request.
	for _, b := range tc.backends {
		if b.srv.Served() == 0 {
			t.Fatalf("backend %s served nothing; sharding broke under mux", b.id)
		}
	}

	// Kill one node: its shared mux connection dies, in-flight work fails
	// retryably, and every tenant's next request lands on the surviving
	// replica.
	tc.backends[0].kill()
	for _, tenant := range tenants {
		prod, _, err := client.Mul(context.Background(), tenant, tc.encrypt(t, 5), tc.encrypt(t, 8))
		if err != nil {
			t.Fatalf("tenant %s after node kill: %v", tenant, err)
		}
		if got := tc.decrypt(prod); got != 40 {
			t.Fatalf("tenant %s after node kill: 5*8 = %d", tenant, got)
		}
	}
}
