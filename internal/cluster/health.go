package cluster

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// State is one backend's position in the failure-handling state machine.
type State int32

const (
	// StateHealthy: routable; consecutive probe/request failures below the
	// ejection threshold.
	StateHealthy State = iota
	// StateEjected: the circuit is open. The node is out of the ring walk
	// and receives no traffic; probes continue on an exponentially backed
	// off schedule.
	StateEjected
	// StateHalfOpen: a probe succeeded after ejection. The node is routable
	// again on probation — the next success promotes it to healthy, the
	// next failure re-ejects it with a doubled backoff.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateEjected:
		return "ejected"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// HealthConfig parameterizes the health manager. Zero values select the
// documented defaults.
type HealthConfig struct {
	// Interval is the probe period for routable nodes (default 500ms).
	Interval time.Duration
	// Timeout bounds one probe (default 1s).
	Timeout time.Duration
	// FailThreshold is the consecutive failures — probe or live request —
	// that open the circuit (default 2).
	FailThreshold int
	// BackoffMax caps the probe backoff of an ejected node (default 10s).
	BackoffMax time.Duration
	// Jitter is the fraction of random spread applied to every probe delay
	// (default 0.2) so a fleet of routers does not probe in lockstep.
	Jitter float64
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// backend IDs.
	Seed int64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	return c
}

// probeFunc checks one backend; nil means alive.
type probeFunc func(ctx context.Context, backend string) error

// backendHealth is one node's state machine. All transitions happen under
// mu; reads for routing go through routable/state.
type backendHealth struct {
	id   string
	stop chan struct{} // closed when this backend leaves the fleet

	// Load signals for replica selection, updated lock-free on the request
	// path: an EWMA of attempt latency and the number of live attempts.
	ewmaNanos atomic.Uint64 // 0 = no sample yet
	inflight  atomic.Int64

	mu          sync.Mutex
	state       State
	consecFails int
	backoff     time.Duration // current probe delay while ejected
	ejections   uint64
	lastErr     string
	lastChange  time.Time
}

// healthManager runs one probe loop per backend and folds in live-request
// outcomes reported by the router, so a dead node is detected by whichever
// signal arrives first.
type healthManager struct {
	cfg   HealthConfig
	probe probeFunc
	reg   *obs.Registry

	// onChange, when set, is called outside the backend lock after every
	// state transition (the router logs these).
	onChange func(id string, from, to State)

	mu       sync.Mutex
	rng      *rand.Rand
	backends map[string]*backendHealth
	started  bool

	quit chan struct{}
	wg   sync.WaitGroup
}

func newHealthManager(cfg HealthConfig, backends []string, probe probeFunc, reg *obs.Registry, onChange func(id string, from, to State)) *healthManager {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		for _, b := range backends {
			seed ^= int64(hash64(b))
		}
		seed |= 1
	}
	hm := &healthManager{
		cfg:      cfg,
		probe:    probe,
		reg:      reg,
		onChange: onChange,
		rng:      rand.New(rand.NewSource(seed)),
		backends: make(map[string]*backendHealth, len(backends)),
		quit:     make(chan struct{}),
	}
	for _, id := range backends {
		hm.backends[id] = newBackendHealth(id, cfg.Interval)
	}
	return hm
}

func newBackendHealth(id string, interval time.Duration) *backendHealth {
	return &backendHealth{id: id, backoff: interval, lastChange: time.Now(), stop: make(chan struct{})}
}

// start launches the probe loops.
func (hm *healthManager) start() {
	hm.mu.Lock()
	hm.started = true
	backends := make([]*backendHealth, 0, len(hm.backends))
	for _, b := range hm.backends {
		backends = append(backends, b)
	}
	hm.mu.Unlock()
	for _, b := range backends {
		hm.wg.Add(1)
		go hm.run(b)
	}
}

// stop terminates the probe loops and waits for them.
func (hm *healthManager) stop() {
	close(hm.quit)
	hm.wg.Wait()
}

// add registers a backend joining the fleet and, if probing has started,
// launches its probe loop. Idempotent.
func (hm *healthManager) add(id string) {
	hm.mu.Lock()
	if _, ok := hm.backends[id]; ok {
		hm.mu.Unlock()
		return
	}
	b := newBackendHealth(id, hm.cfg.Interval)
	hm.backends[id] = b
	started := hm.started
	hm.mu.Unlock()
	if started {
		hm.wg.Add(1)
		go hm.run(b)
	}
}

// remove forgets a backend and stops its probe loop.
func (hm *healthManager) remove(id string) {
	hm.mu.Lock()
	b := hm.backends[id]
	delete(hm.backends, id)
	hm.mu.Unlock()
	if b != nil {
		close(b.stop)
	}
}

func (hm *healthManager) run(b *backendHealth) {
	defer hm.wg.Done()
	timer := time.NewTimer(hm.delay(b))
	defer timer.Stop()
	for {
		select {
		case <-hm.quit:
			return
		case <-b.stop:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), hm.cfg.Timeout)
		err := hm.probe(ctx, b.id)
		cancel()
		if err != nil {
			hm.reg.Counter("cluster_probe_fail").Add(1)
			hm.recordFailure(b, err)
		} else {
			hm.reg.Counter("cluster_probe_ok").Add(1)
			hm.recordSuccess(b)
		}
		timer.Reset(hm.delay(b))
	}
}

// delay computes the next probe wait: the base interval while routable, the
// current backoff while ejected, both spread by jitter.
func (hm *healthManager) delay(b *backendHealth) time.Duration {
	b.mu.Lock()
	d := hm.cfg.Interval
	if b.state == StateEjected {
		d = b.backoff
	}
	b.mu.Unlock()
	hm.mu.Lock()
	spread := 1 + hm.cfg.Jitter*(2*hm.rng.Float64()-1)
	hm.mu.Unlock()
	return time.Duration(float64(d) * spread)
}

// ReportSuccess folds a successful live request into the node's state (the
// router calls this so recovery does not wait for the next probe).
func (hm *healthManager) reportSuccess(id string) {
	if b := hm.backend(id); b != nil {
		hm.recordSuccess(b)
	}
}

// ReportFailure folds a failed live request (transport-level — the node is
// unreachable or mid-crash) into the node's state.
func (hm *healthManager) reportFailure(id string, err error) {
	if b := hm.backend(id); b != nil {
		hm.recordFailure(b, err)
	}
}

func (hm *healthManager) backend(id string) *backendHealth {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	return hm.backends[id]
}

func (hm *healthManager) recordSuccess(b *backendHealth) {
	b.mu.Lock()
	from := b.state
	b.consecFails = 0
	b.lastErr = ""
	switch b.state {
	case StateEjected:
		b.state = StateHalfOpen
	case StateHalfOpen:
		b.state = StateHealthy
		b.backoff = hm.cfg.Interval
	}
	to := b.state
	if from != to {
		b.lastChange = time.Now()
	}
	b.mu.Unlock()
	if from != to {
		if to == StateHealthy {
			hm.reg.Counter("cluster_recoveries").Add(1)
		}
		hm.notify(b.id, from, to)
	}
}

func (hm *healthManager) recordFailure(b *backendHealth, err error) {
	b.mu.Lock()
	from := b.state
	b.consecFails++
	if err != nil {
		b.lastErr = err.Error()
	}
	switch b.state {
	case StateHealthy:
		if b.consecFails >= hm.cfg.FailThreshold {
			b.state = StateEjected
			b.ejections++
			b.backoff = hm.cfg.Interval
		}
	case StateHalfOpen:
		// Probation failed: back off twice as long before the next trial.
		b.state = StateEjected
		b.ejections++
		b.backoff = min(2*b.backoff, hm.cfg.BackoffMax)
	case StateEjected:
		b.backoff = min(2*b.backoff, hm.cfg.BackoffMax)
	}
	to := b.state
	if from != to {
		b.lastChange = time.Now()
	}
	b.mu.Unlock()
	if from != to {
		hm.reg.Counter("cluster_ejections").Add(1)
		hm.notify(b.id, from, to)
	}
}

func (hm *healthManager) notify(id string, from, to State) {
	if hm.onChange != nil {
		hm.onChange(id, from, to)
	}
}

// ewmaAlpha is the smoothing factor of the per-backend latency EWMA: heavy
// enough that one slow attempt moves the estimate, light enough that a single
// outlier does not dominate replica selection.
const ewmaAlpha = 0.3

// observe folds one attempt's latency into the backend's EWMA.
func (hm *healthManager) observe(id string, d time.Duration) {
	b := hm.backend(id)
	if b == nil || d < 0 {
		return
	}
	for {
		old := b.ewmaNanos.Load()
		next := uint64(d)
		if old != 0 {
			next = uint64((1-ewmaAlpha)*float64(old) + ewmaAlpha*float64(d))
		}
		if next == 0 {
			next = 1
		}
		if b.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// incInflight/decInflight bracket one live attempt on the backend.
func (hm *healthManager) incInflight(id string) {
	if b := hm.backend(id); b != nil {
		b.inflight.Add(1)
	}
}

func (hm *healthManager) decInflight(id string) {
	if b := hm.backend(id); b != nil {
		b.inflight.Add(-1)
	}
}

// loadScore estimates the cost of sending the next request to the node:
// expected latency scaled by queue depth. A node with no samples yet scores
// zero — cold but idle, the cheapest place to send work.
func (hm *healthManager) loadScore(id string) float64 {
	b := hm.backend(id)
	if b == nil {
		return 0
	}
	inflight := b.inflight.Load()
	if inflight < 0 {
		inflight = 0
	}
	return float64(b.ewmaNanos.Load()) * float64(1+inflight)
}

// routable reports whether the node may receive traffic (healthy or on
// half-open probation).
func (hm *healthManager) routable(id string) bool {
	b := hm.backend(id)
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != StateEjected
}

// BackendStatus is the health slice of a Stats snapshot.
type BackendStatus struct {
	ID          string  `json:"id"`
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	ConsecFails int     `json:"consec_fails,omitempty"`
	Ejections   uint64  `json:"ejections,omitempty"`
	LastErr     string  `json:"last_err,omitempty"`
	EWMAMillis  float64 `json:"ewma_ms,omitempty"` // smoothed attempt latency
	Inflight    int64   `json:"inflight,omitempty"`
}

func (hm *healthManager) status(id string) BackendStatus {
	b := hm.backend(id)
	if b == nil {
		return BackendStatus{ID: id, State: "unknown"}
	}
	ewma := float64(b.ewmaNanos.Load()) / float64(time.Millisecond)
	inflight := b.inflight.Load()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		ID:          id,
		State:       b.state.String(),
		ConsecFails: b.consecFails,
		Ejections:   b.ejections,
		LastErr:     b.lastErr,
		EWMAMillis:  ewma,
		Inflight:    inflight,
	}
}
