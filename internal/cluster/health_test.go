package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestHealth builds a manager without starting probe loops, so tests can
// drive the state machine deterministically via report{Success,Failure}.
func newTestHealth(t *testing.T, cfg HealthConfig, backends ...string) (*healthManager, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return newHealthManager(cfg, backends, func(context.Context, string) error {
		return errors.New("probe should not run in this test")
	}, reg, nil), reg
}

func stateOf(t *testing.T, hm *healthManager, id string) State {
	t.Helper()
	b := hm.backend(id)
	if b == nil {
		t.Fatalf("unknown backend %q", id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func TestHealthEjectionAfterThreshold(t *testing.T) {
	hm, reg := newTestHealth(t, HealthConfig{FailThreshold: 3}, "n1", "n2")
	boom := errors.New("connection refused")

	hm.reportFailure("n1", boom)
	hm.reportFailure("n1", boom)
	if got := stateOf(t, hm, "n1"); got != StateHealthy {
		t.Fatalf("state %v after 2/3 failures, want healthy", got)
	}
	if !hm.routable("n1") {
		t.Fatal("below threshold must stay routable")
	}
	hm.reportFailure("n1", boom)
	if got := stateOf(t, hm, "n1"); got != StateEjected {
		t.Fatalf("state %v after threshold failures, want ejected", got)
	}
	if hm.routable("n1") {
		t.Fatal("ejected node must not be routable")
	}
	if hm.routable("n2") == false {
		t.Fatal("unrelated node must stay routable")
	}
	if got := reg.Snapshot().Counters["cluster_ejections"]; got != 1 {
		t.Fatalf("cluster_ejections = %d, want 1", got)
	}
	st := hm.status("n1")
	if st.State != "ejected" || st.Ejections != 1 || st.LastErr != boom.Error() {
		t.Fatalf("status = %+v", st)
	}
}

func TestHealthSuccessResetsFailureStreak(t *testing.T) {
	hm, _ := newTestHealth(t, HealthConfig{FailThreshold: 2}, "n1")
	boom := errors.New("i/o timeout")
	// Interleaved successes keep the streak below threshold forever.
	for i := 0; i < 10; i++ {
		hm.reportFailure("n1", boom)
		hm.reportSuccess("n1")
	}
	if got := stateOf(t, hm, "n1"); got != StateHealthy {
		t.Fatalf("state %v after interleaved outcomes, want healthy", got)
	}
}

func TestHealthHalfOpenRecovery(t *testing.T) {
	hm, reg := newTestHealth(t, HealthConfig{FailThreshold: 1}, "n1")
	boom := errors.New("connection reset")

	hm.reportFailure("n1", boom)
	if got := stateOf(t, hm, "n1"); got != StateEjected {
		t.Fatalf("state %v, want ejected", got)
	}
	// First success after ejection: probation, already routable again.
	hm.reportSuccess("n1")
	if got := stateOf(t, hm, "n1"); got != StateHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if !hm.routable("n1") {
		t.Fatal("half-open node must be routable (probation)")
	}
	// Second success: fully healthy, ejection counter unchanged.
	hm.reportSuccess("n1")
	if got := stateOf(t, hm, "n1"); got != StateHealthy {
		t.Fatalf("state %v, want healthy", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster_recoveries"] != 1 {
		t.Fatalf("cluster_recoveries = %d, want 1", snap.Counters["cluster_recoveries"])
	}
}

func TestHealthHalfOpenFailureDoublesBackoff(t *testing.T) {
	interval := 100 * time.Millisecond
	hm, _ := newTestHealth(t, HealthConfig{FailThreshold: 1, Interval: interval, BackoffMax: 350 * time.Millisecond}, "n1")
	boom := errors.New("broken pipe")

	backoffOf := func() time.Duration {
		b := hm.backend("n1")
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.backoff
	}

	hm.reportFailure("n1", boom) // healthy -> ejected, backoff = interval
	if got := backoffOf(); got != interval {
		t.Fatalf("backoff %v after first ejection, want %v", got, interval)
	}
	hm.reportFailure("n1", boom) // still ejected, backoff doubles
	if got := backoffOf(); got != 2*interval {
		t.Fatalf("backoff %v, want %v", got, 2*interval)
	}
	hm.reportSuccess("n1") // ejected -> half-open
	hm.reportFailure("n1", boom)
	// Probation failure re-ejects with a doubled backoff, capped at max.
	if got, want := backoffOf(), 350*time.Millisecond; got != want {
		t.Fatalf("backoff %v after half-open failure, want capped %v", got, want)
	}
	if got := stateOf(t, hm, "n1"); got != StateEjected {
		t.Fatalf("state %v after half-open failure, want ejected", got)
	}
	if got := hm.status("n1").Ejections; got != 2 {
		t.Fatalf("ejections = %d, want 2", got)
	}
	// Full recovery resets the backoff to the base interval.
	hm.reportSuccess("n1")
	hm.reportSuccess("n1")
	if got := backoffOf(); got != interval {
		t.Fatalf("backoff %v after recovery, want reset to %v", got, interval)
	}
}

// TestHealthProbeLoop runs the real probe loop against a switchable fake
// backend: the loop must eject it while it is down and recover it after it
// comes back, without any live traffic.
func TestHealthProbeLoop(t *testing.T) {
	var (
		mu   sync.Mutex
		down bool
	)
	setDown := func(v bool) { mu.Lock(); down = v; mu.Unlock() }
	probe := func(context.Context, string) error {
		mu.Lock()
		defer mu.Unlock()
		if down {
			return errors.New("connection refused")
		}
		return nil
	}
	reg := obs.NewRegistry()
	hm := newHealthManager(HealthConfig{
		Interval:      5 * time.Millisecond,
		Timeout:       50 * time.Millisecond,
		FailThreshold: 2,
		BackoffMax:    20 * time.Millisecond,
		Seed:          7,
	}, []string{"n1"}, probe, reg, nil)
	hm.start()
	defer hm.stop()

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if stateOf(t, hm, "n1") == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend never reached %v (now %v)", want, stateOf(t, hm, "n1"))
	}

	setDown(true)
	waitState(StateEjected)
	setDown(false)
	waitState(StateHealthy)
	if reg.Snapshot().Counters["cluster_recoveries"] == 0 {
		t.Fatal("no recovery counted")
	}
}

func TestHealthUnknownBackend(t *testing.T) {
	hm, _ := newTestHealth(t, HealthConfig{}, "n1")
	// Reports for unknown IDs are ignored, not a panic.
	hm.reportSuccess("ghost")
	hm.reportFailure("ghost", errors.New("x"))
	if hm.routable("ghost") {
		t.Fatal("unknown backend must not be routable")
	}
	if got := hm.status("ghost").State; got != "unknown" {
		t.Fatalf("status %q, want unknown", got)
	}
}
