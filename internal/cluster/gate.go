package cluster

import (
	"context"
	"sync"
)

// gateSet serializes routing against membership changes per tenant. A
// migration holds the gates of the tenants it is about to move: new requests
// for those tenants park in enter until release, while drain waits for the
// requests already past the gate to finish. Requests are never rejected —
// a gated request simply observes the post-flip ring when it resumes, which
// is what makes a cutover zero-drop.
type gateSet struct {
	mu       sync.Mutex
	held     map[string]chan struct{} // tenant -> closed on release
	inflight map[string]int           // tenant -> requests past the gate
	changed  chan struct{}            // closed+replaced on every exit
}

func newGateSet() *gateSet {
	return &gateSet{
		held:     make(map[string]chan struct{}),
		inflight: make(map[string]int),
		changed:  make(chan struct{}),
	}
}

// enter blocks while the tenant's gate is held, then registers one in-flight
// request. It reports whether the caller had to wait.
func (g *gateSet) enter(ctx context.Context, tenant string) (waited bool, err error) {
	for {
		g.mu.Lock()
		gate := g.held[tenant]
		if gate == nil {
			g.inflight[tenant]++
			g.mu.Unlock()
			return waited, nil
		}
		g.mu.Unlock()
		waited = true
		select {
		case <-gate:
		case <-ctx.Done():
			return waited, ctx.Err()
		}
	}
}

// exit retires one in-flight request and wakes any drainer.
func (g *gateSet) exit(tenant string) {
	g.mu.Lock()
	if g.inflight[tenant]--; g.inflight[tenant] <= 0 {
		delete(g.inflight, tenant)
	}
	close(g.changed)
	g.changed = make(chan struct{})
	g.mu.Unlock()
}

// hold gates new requests for the tenants. Idempotent per tenant.
func (g *gateSet) hold(tenants []string) {
	g.mu.Lock()
	for _, t := range tenants {
		if g.held[t] == nil {
			g.held[t] = make(chan struct{})
		}
	}
	g.mu.Unlock()
}

// release opens the tenants' gates, waking every parked request.
func (g *gateSet) release(tenants []string) {
	g.mu.Lock()
	for _, t := range tenants {
		if ch := g.held[t]; ch != nil {
			close(ch)
			delete(g.held, t)
		}
	}
	g.mu.Unlock()
}

// drain waits until no request of the listed tenants is in flight. The
// caller holds their gates, so the count only falls.
func (g *gateSet) drain(ctx context.Context, tenants []string) error {
	for {
		g.mu.Lock()
		n := 0
		for _, t := range tenants {
			n += g.inflight[t]
		}
		ch := g.changed
		g.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
