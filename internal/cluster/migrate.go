package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cloud"
)

// ErrLastNode refuses a Leave/Drain that would empty the ring.
var ErrLastNode = errors.New("cluster: refusing to remove the last ring member")

// MigrationReport summarizes one membership change: how many tenants were
// rebalanced onto different nodes and how many evaluation keys moved with
// them before the cutover.
type MigrationReport struct {
	Node    string   `json:"node"`
	Moved   []string `json:"moved,omitempty"` // tenants whose placement changed
	Tenants int      `json:"tenants"`
	Keys    int      `json:"keys"`
}

// SetMigrationHook installs a test hook called at each stage boundary of a
// membership change: "plan", "hold", "drain", "transfer" (with the tenant),
// "flip", "release". Chaos tests use it to kill nodes at pinned stages. The
// hook must not call back into Join/Leave/Drain.
func (r *Router) SetMigrationHook(h func(stage, tenant string)) {
	r.hookMu.Lock()
	r.migrateHook = h
	r.hookMu.Unlock()
}

func (r *Router) hook(stage, tenant string) {
	r.hookMu.Lock()
	h := r.migrateHook
	r.hookMu.Unlock()
	if h != nil {
		h(stage, tenant)
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf(format, args...)
	}
}

// member reports whether id is currently in the ring.
func (r *Router) member(id string) bool {
	for _, m := range r.ring.Members() {
		if m == id {
			return true
		}
	}
	return false
}

// scratchRing clones the live membership into a throwaway ring so the
// post-change placement can be computed before the flip.
func (r *Router) scratchRing(add, remove string) *Ring {
	next := NewRing(r.cfg.VirtualNodes)
	for _, m := range r.ring.Members() {
		if m != remove {
			next.Add(m)
		}
	}
	if add != "" {
		next.Add(add)
	}
	return next
}

// knownTenants unions the tenant namespaces (those with registered
// evaluation keys) reported by every live ring member. Nodes that cannot be
// reached are skipped: migration plans over the best information available.
func (r *Router) knownTenants(ctx context.Context) []string {
	seen := make(map[string]struct{})
	for _, id := range r.ring.Members() {
		addr := r.addr(id)
		if addr == "" {
			continue
		}
		cl, err := cloud.Dial(addr, r.cfg.Params)
		if err != nil {
			continue
		}
		ictx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		info, err := cl.Info(ictx)
		cancel()
		cl.Close()
		if err != nil {
			continue
		}
		for _, t := range info.Tenants {
			seen[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// transferTenant copies one tenant's evaluation-key state to dest, trying
// each source in order. A source that answers "no keys" is authoritative
// for itself but not for the set; only when no source yields a blob and
// none failed at the transport level is the tenant considered keyless
// (nothing to move). Returns the number of keys installed on dest.
func (r *Router) transferTenant(ctx context.Context, tenant string, sources []string, dest string) (int, error) {
	destAddr := r.addr(dest)
	if destAddr == "" {
		return 0, fmt.Errorf("cluster: transfer %q: unknown destination %s", tenant, dest)
	}
	var lastErr error
	for _, src := range sources {
		if src == dest {
			continue
		}
		addr := r.addr(src)
		if addr == "" {
			continue
		}
		cl, err := cloud.Dial(addr, r.cfg.Params)
		if err != nil {
			lastErr = err
			continue
		}
		blob, err := cl.KeyExport(ctx, tenant)
		cl.Close()
		if err != nil {
			var se *cloud.ServerError
			if !errors.As(err, &se) {
				// Transport failure; a ServerError means the source answered
				// authoritatively that it holds no keys for this tenant.
				lastErr = err
			}
			continue
		}
		dcl, err := cloud.Dial(destAddr, r.cfg.Params)
		if err != nil {
			return 0, fmt.Errorf("cluster: transfer %q to %s: %w", tenant, dest, err)
		}
		ack, err := dcl.KeyImport(ctx, tenant, blob)
		dcl.Close()
		if err != nil {
			return 0, fmt.Errorf("cluster: transfer %q to %s: %w", tenant, dest, err)
		}
		return ack.Keys, nil
	}
	if lastErr != nil {
		return 0, fmt.Errorf("cluster: transfer %q: no source produced keys: %w", tenant, lastErr)
	}
	// Every reachable source answered keyless: nothing to move.
	return 0, nil
}

// Join adds a node to the fleet with zero-drop cutover: the node is probed,
// the tenants the ring will rebalance onto it get their evaluation-key
// state copied over first (gate -> drain -> transfer), and only then does
// the ring flip. Any failure before the flip aborts cleanly — routing and
// key placement are untouched. Idempotent for a node already in the ring.
func (r *Router) Join(ctx context.Context, b Backend) (*MigrationReport, error) {
	if b.ID == "" || b.Addr == "" {
		return nil, fmt.Errorf("cluster: join needs ID and Addr, got %+v", b)
	}
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	if r.member(b.ID) {
		return &MigrationReport{Node: b.ID}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	mctx, cancel := context.WithTimeout(ctx, r.cfg.MigrationTimeout)
	defer cancel()

	// Register the node's transport and health state (reused if the node
	// was drained earlier and is rejoining).
	r.mu.Lock()
	fresh := false
	if _, ok := r.addrs[b.ID]; !ok {
		fresh = true
		r.addrs[b.ID] = b.Addr
		r.pools[b.ID] = r.newPoolFor(b)
	}
	r.mu.Unlock()
	if fresh {
		r.health.add(b.ID)
	}
	abort := func(err error) (*MigrationReport, error) {
		r.reg.Counter("cluster_migration_failures").Add(1)
		if fresh {
			r.forget(b.ID)
		}
		return nil, err
	}

	// Never cut traffic over to a node that does not answer.
	pctx, pcancel := context.WithTimeout(mctx, r.cfg.AttemptTimeout)
	err := r.probe(pctx, b.ID)
	pcancel()
	if err != nil {
		return abort(fmt.Errorf("cluster: join %s: probe failed: %w", b.ID, err))
	}

	r.hook("plan", "")
	tenants := r.knownTenants(mctx)
	next := r.scratchRing(b.ID, "")
	var moved []string
	for _, t := range tenants {
		if contains(next.Lookup(t, r.cfg.Replicas), b.ID) {
			moved = append(moved, t)
		}
	}

	report := &MigrationReport{Node: b.ID, Moved: moved, Tenants: len(moved)}
	r.gates.hold(moved)
	released := false
	release := func() {
		if !released {
			released = true
			r.gates.release(moved)
		}
	}
	defer release()
	r.hook("hold", "")

	dctx, dcancel := context.WithTimeout(mctx, r.cfg.DrainTimeout)
	if err := r.gates.drain(dctx, moved); err != nil {
		// Safe to proceed: key state is copied, never moved, so stragglers
		// finish correctly against the old owners.
		r.logf("cluster: join %s: drain timed out, proceeding: %v", b.ID, err)
	}
	dcancel()
	r.hook("drain", "")

	sources := r.ring.Members()
	for _, t := range moved {
		r.hook("transfer", t)
		old := r.ring.Lookup(t, r.cfg.Replicas)
		srcs := append(append([]string{}, old...), sources...)
		keys, err := r.transferTenant(mctx, t, srcs, b.ID)
		if err != nil {
			release()
			return abort(fmt.Errorf("cluster: join %s aborted before cutover: %w", b.ID, err))
		}
		report.Keys += keys
	}
	r.reg.Counter("cluster_migrated_tenants").Add(uint64(len(moved)))
	r.reg.Counter("cluster_migrated_keys").Add(uint64(report.Keys))

	r.ring.Add(b.ID)
	r.hook("flip", "")
	release()
	r.hook("release", "")
	r.reg.Counter("cluster_joins").Add(1)
	r.logf("cluster: node %s joined (%d tenants, %d keys migrated)", b.ID, report.Tenants, report.Keys)
	return report, nil
}

// Leave removes a node with zero-drop cutover: tenants losing a replica get
// their key state copied to the nodes taking over (sourced from the leaver
// when it still answers, its replica peers when it does not), then the ring
// flips and the node's transport state is torn down.
func (r *Router) Leave(ctx context.Context, id string) (*MigrationReport, error) {
	return r.retire(ctx, id, true)
}

// Drain is Leave without forgetting the node: it keeps its transport pool
// and health probes so a later Join readmits it without re-dialing, which
// is the rolling-restart idiom — drain, restart, join.
func (r *Router) Drain(ctx context.Context, id string) (*MigrationReport, error) {
	return r.retire(ctx, id, false)
}

func (r *Router) retire(ctx context.Context, id string, forget bool) (*MigrationReport, error) {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	if !r.member(id) {
		if forget && r.addr(id) != "" {
			// Drained earlier: only the transport state is left to drop.
			r.forget(id)
			return &MigrationReport{Node: id}, nil
		}
		return nil, fmt.Errorf("cluster: %s is not a ring member", id)
	}
	if r.ring.Size() <= 1 {
		return nil, ErrLastNode
	}
	if ctx == nil {
		ctx = context.Background()
	}
	mctx, cancel := context.WithTimeout(ctx, r.cfg.MigrationTimeout)
	defer cancel()

	r.hook("plan", "")
	tenants := r.knownTenants(mctx)
	next := r.scratchRing("", id)
	type move struct {
		tenant string
		olds   []string
		dests  []string
	}
	var plan []move
	var moved []string
	for _, t := range tenants {
		old := r.ring.Lookup(t, r.cfg.Replicas)
		if !contains(old, id) {
			continue
		}
		var dests []string
		for _, n := range next.Lookup(t, r.cfg.Replicas) {
			if !contains(old, n) {
				dests = append(dests, n)
			}
		}
		moved = append(moved, t)
		plan = append(plan, move{tenant: t, olds: old, dests: dests})
	}

	report := &MigrationReport{Node: id, Moved: moved, Tenants: len(moved)}
	r.gates.hold(moved)
	released := false
	release := func() {
		if !released {
			released = true
			r.gates.release(moved)
		}
	}
	defer release()
	r.hook("hold", "")

	dctx, dcancel := context.WithTimeout(mctx, r.cfg.DrainTimeout)
	if err := r.gates.drain(dctx, moved); err != nil {
		r.logf("cluster: retire %s: drain timed out, proceeding: %v", id, err)
	}
	dcancel()
	r.hook("drain", "")

	for _, m := range plan {
		r.hook("transfer", m.tenant)
		// Prefer the leaver as the source — it certainly served this tenant
		// — and fall back to the surviving replica peers when it is already
		// dead (the crash-during-rolling-restart case).
		srcs := append([]string{id}, m.olds...)
		for _, dest := range m.dests {
			keys, err := r.transferTenant(mctx, m.tenant, srcs, dest)
			if err != nil {
				release()
				r.reg.Counter("cluster_migration_failures").Add(1)
				return nil, fmt.Errorf("cluster: retire %s aborted before cutover: %w", id, err)
			}
			report.Keys += keys
		}
	}
	r.reg.Counter("cluster_migrated_tenants").Add(uint64(len(moved)))
	r.reg.Counter("cluster_migrated_keys").Add(uint64(report.Keys))

	r.ring.Remove(id)
	r.hook("flip", "")
	release()
	r.hook("release", "")
	if forget {
		r.forget(id)
		r.reg.Counter("cluster_leaves").Add(1)
	} else {
		r.reg.Counter("cluster_drains").Add(1)
	}
	r.logf("cluster: node %s retired (forget=%v, %d tenants, %d keys migrated)", id, forget, report.Tenants, report.Keys)
	return report, nil
}

// forget tears down a node's transport and health state. The node must
// already be out of the ring.
func (r *Router) forget(id string) {
	r.health.remove(id)
	r.mu.Lock()
	p := r.pools[id]
	delete(r.pools, id)
	delete(r.addrs, id)
	r.mu.Unlock()
	if p != nil {
		p.close()
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// WatchMembership polls load from a membership file (one "id=addr" per
// line, # comments) and applies the diff against the live ring as
// join/leave calls — the file-driven counterpart of CmdAdmin, for
// orchestrators that manage fleets by writing config. It blocks until ctx
// ends; per-change errors are logged and retried on the next poll.
func (r *Router) WatchMembership(ctx context.Context, load func() (map[string]string, error), interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		want, err := load()
		if err != nil {
			r.logf("cluster: membership watch: %v", err)
			continue
		}
		if len(want) == 0 {
			continue // refuse to interpret an empty file as "remove everything"
		}
		for id, addr := range want {
			if !r.member(id) {
				if _, err := r.Join(ctx, Backend{ID: id, Addr: addr}); err != nil {
					r.logf("cluster: membership watch: join %s: %v", id, err)
				}
			}
		}
		for _, id := range r.ring.Members() {
			if _, ok := want[id]; !ok {
				if _, err := r.Leave(ctx, id); err != nil {
					r.logf("cluster: membership watch: leave %s: %v", id, err)
				}
			}
		}
	}
}
