package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/fv"
	"repro/internal/program"
)

// clusterTestProgram compiles (a·b) + a.
func clusterTestProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	b.Output(b.Add(b.Mul(x, y), x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestClusterProgramRouting: a whole compiled program routes to its tenant's
// ring primary as one admission unit, and fails over to the replica when the
// primary dies — with no silent wrong answers either way.
func TestClusterProgramRouting(t *testing.T) {
	tenants := testTenants(4)
	tc := startCluster(t, 2, tenants)
	client, err := NewClient(Config{
		Params:   tc.params,
		Backends: tc.backendList(),
		Replicas: 2,
		Health:   HealthConfig{Interval: 25 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	p := clusterTestProgram(t)
	inputs := []*fv.Ciphertext{tc.encrypt(t, 3), tc.encrypt(t, 5)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, tenant := range tenants {
		resp, err := client.RunProgram(ctx, tenant, p, inputs)
		if err != nil {
			t.Fatalf("tenant %s: %v", tenant, err)
		}
		// (3·5 + 3) mod 257 = 18.
		if got := tc.decrypt(resp.Outputs[0]); got != 18 {
			t.Fatalf("tenant %s: program decrypts to %d, want 18", tenant, got)
		}
		if resp.Nodes != 2 || resp.KeyLoads != 1 {
			t.Fatalf("tenant %s: nodes %d key loads %d, want 2 and 1", tenant, resp.Nodes, resp.KeyLoads)
		}
	}

	// Stickiness: each tenant's program ran on its ring primary, nowhere else.
	for _, tenant := range tenants {
		primary := client.Router().Candidates(tenant)[0]
		for _, b := range tc.backends {
			ts, ok := b.eng.Stats().PerTenant[tenant]
			if !ok {
				continue
			}
			if b.id != primary {
				t.Fatalf("tenant %s program ran on %s, ring primary is %s", tenant, b.id, primary)
			}
			if ts.Programs != 1 {
				t.Fatalf("tenant %s on %s: programs %d, want 1", tenant, b.id, ts.Programs)
			}
		}
	}

	// Kill one backend; tenants whose primary died must fail over to the
	// surviving replica and still decrypt correctly (CmdProgram is in the
	// idempotent retry set).
	victim := tc.backends[0]
	victim.kill()
	deadline := time.Now().Add(10 * time.Second)
	for _, tenant := range tenants {
		for {
			resp, err := client.RunProgram(ctx, tenant, p, inputs)
			if err == nil {
				if got := tc.decrypt(resp.Outputs[0]); got != 18 {
					t.Fatalf("tenant %s after failover: decrypts to %d, want 18", tenant, got)
				}
				break
			}
			// Deterministic app errors would mean the replica is missing keys —
			// full replication makes that a bug, not a transient.
			var se *cloud.ServerError
			if errors.As(err, &se) && !se.Retryable() {
				t.Fatalf("tenant %s after failover: deterministic error %v", tenant, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s: router did not converge after primary death: %v", tenant, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
