// Package cluster turns N independent heserver backends into one service:
// the scale-out rung above the paper's Fig. 11 platform. The paper doubles
// throughput by putting two co-processors behind one Arm server; this layer
// puts many such servers behind one router, sharding tenants across them
// with a consistent-hash ring so a tenant's evaluation keys and key-cache
// locality stick to a node, health-checking every backend so a dead node is
// ejected and its tenants reroute to replicas, and bounding every attempt
// with a deadline so failures surface as fast errors instead of hangs.
package cluster

import (
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the ring points per member. More points smooth the
// key distribution (the classic consistent-hashing trade: memory and
// rebalance granularity vs. balance).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes, keyed by tenant. It
// answers "which nodes own this tenant, in preference order" such that
//
//   - the answer is deterministic given the membership set (any router
//     instance computes the same placement), and
//   - membership changes rebalance minimally: removing a node remaps only
//     the tenants that node owned, adding a node steals only the tenants it
//     now owns — everyone else keeps their placement and key-cache locality.
//
// Health is deliberately not the ring's concern: the ring places over the
// full membership, and the router skips unhealthy nodes when walking the
// preference order, so a node's recovery restores its original tenants.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]struct{}
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per member
// (<= 0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// hash64 is FNV-1a with a 64-bit avalanche finalizer. FNV is stable across
// processes and Go versions, which the deterministic-placement property
// depends on (maphash would differ per process) — but on the short,
// near-identical strings of virtual-node labels its raw output clusters in
// the high bits, skewing the ring badly. The finalizer (murmur3's fmix64)
// spreads every input bit across the whole word.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns up to n distinct nodes for the key, in preference order:
// the first is the primary (the first virtual node clockwise from the key's
// hash), the rest are the failover replicas encountered continuing
// clockwise. n <= 0 or beyond membership is clamped to the membership size.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
