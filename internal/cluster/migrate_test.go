package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
)

// startKeylessCluster boots n backends with the relin key registered only
// under the default tenant — every per-tenant namespace starts keyless, so
// key placement is entirely in the tests' hands.
func startKeylessCluster(t *testing.T, n int, tenants []string) *testCluster {
	t.Helper()
	_ = tenants
	return startCluster(t, n, nil)
}

// registerPerCandidateSet installs the shared relin key only on each
// tenant's current candidate-set nodes — NOT full replication — so that a
// membership change genuinely depends on the key-state migration: the new
// owner starts keyless and would fail every Mul if the transfer did not
// happen before the cutover.
func registerPerCandidateSet(t *testing.T, tc *testCluster, r *Router, tenants []string) {
	t.Helper()
	byID := map[string]*testBackend{}
	for _, b := range tc.backends {
		byID[b.id] = b
	}
	for _, tenant := range tenants {
		for _, id := range r.Candidates(tenant) {
			byID[id].eng.SetRelinKey(tenant, tc.rk)
		}
	}
}

// elasticHealth is a quiet probe config: deterministic, slow enough not to
// interfere with migration assertions.
func elasticHealth() HealthConfig {
	return HealthConfig{Interval: 50 * time.Millisecond, Timeout: 500 * time.Millisecond, FailThreshold: 2, Seed: 1}
}

// TestJoinMigratesKeysZeroDrop grows a 3-node fleet to 4 under continuous
// load. The joiner starts with zero evaluation keys; the migration must
// copy the moved tenants' keys over before the flip, so the load sees no
// error and no wrong result at any point, and the joiner ends up serving
// real traffic.
func TestJoinMigratesKeysZeroDrop(t *testing.T) {
	tenants := testTenants(12)
	tc := startKeylessCluster(t, 4, tenants) // node-3 is the spare joiner
	initial := tc.backendList()[:3]
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    initial,
		Replicas:    2,
		MaxAttempts: 3,
		Health:      elasticHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	registerPerCandidateSet(t, tc, client.Router(), tenants)

	var (
		mu         sync.Mutex
		okOps      int
		wrong      int
		clientErrs []error
	)
	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for l := 0; l < 3; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				tenant := tenants[i%len(tenants)]
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				prod, _, err := client.Mul(ctx, tenant, a, b)
				cancel()
				mu.Lock()
				if err != nil {
					clientErrs = append(clientErrs, fmt.Errorf("tenant %s: %w", tenant, err))
				} else {
					okOps++
					if got := tc.decrypt(prod); got != 117 {
						wrong++
					}
				}
				mu.Unlock()
			}
		}(l)
	}
	// Let load flow, then join the spare node mid-traffic.
	time.Sleep(50 * time.Millisecond)
	joiner := tc.backends[3]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := client.Router().Join(ctx, Backend{ID: joiner.id, Addr: joiner.addr})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if report.Tenants == 0 || report.Keys == 0 {
		t.Fatalf("join migrated tenants=%d keys=%d; expected the joiner to take over tenants with keys", report.Tenants, report.Keys)
	}
	// Keep loading after the flip so the joiner provably serves.
	deadline := time.Now().Add(15 * time.Second)
	for joiner.srv.Served() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never served a request after the cutover")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(clientErrs) != 0 {
		t.Fatalf("%d dropped/failed requests during join (zero-drop violated): %v", len(clientErrs), clientErrs[0])
	}
	if wrong != 0 {
		t.Fatalf("%d wrong homomorphic results during join", wrong)
	}
	if okOps == 0 {
		t.Fatal("no load completed; test is vacuous")
	}
	snap := client.Stats()
	if len(snap.Members) != 4 {
		t.Fatalf("membership %v after join, want 4 nodes", snap.Members)
	}
	if snap.Obs.Counters["cluster_joins"] != 1 {
		t.Fatalf("cluster_joins = %d, want 1", snap.Obs.Counters["cluster_joins"])
	}
	if snap.Obs.Counters["cluster_migrated_keys"] == 0 {
		t.Fatal("no migrated keys counted")
	}
}

// TestLeaveMigratesKeysZeroDrop shrinks a 3-node fleet under load: the
// leaver's tenants move to survivors that did not hold their keys before,
// and nothing fails or corrupts during the cutover.
func TestLeaveMigratesKeysZeroDrop(t *testing.T) {
	tenants := testTenants(12)
	tc := startKeylessCluster(t, 3, tenants)
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    tc.backendList(),
		Replicas:    2,
		MaxAttempts: 3,
		Health:      elasticHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	registerPerCandidateSet(t, tc, client.Router(), tenants)

	leaver := tc.backends[1]
	var (
		mu         sync.Mutex
		wrong      int
		okOps      int
		clientErrs []error
	)
	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for l := 0; l < 3; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				tenant := tenants[i%len(tenants)]
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				prod, _, err := client.Mul(ctx, tenant, a, b)
				cancel()
				mu.Lock()
				if err != nil {
					clientErrs = append(clientErrs, fmt.Errorf("tenant %s: %w", tenant, err))
				} else {
					okOps++
					if got := tc.decrypt(prod); got != 117 {
						wrong++
					}
				}
				mu.Unlock()
			}
		}(l)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := client.Router().Leave(ctx, leaver.id)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if report.Tenants == 0 {
		t.Fatal("leave moved no tenants; shard split is degenerate")
	}
	// Load continues against the shrunken fleet.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(clientErrs) != 0 {
		t.Fatalf("%d dropped/failed requests during leave (zero-drop violated): %v", len(clientErrs), clientErrs[0])
	}
	if wrong != 0 {
		t.Fatalf("%d wrong homomorphic results during leave", wrong)
	}
	if okOps == 0 {
		t.Fatal("no load completed; test is vacuous")
	}
	snap := client.Stats()
	if len(snap.Members) != 2 {
		t.Fatalf("membership %v after leave, want 2 nodes", snap.Members)
	}
	for _, m := range snap.Members {
		if m == leaver.id {
			t.Fatalf("leaver %s still a ring member", leaver.id)
		}
	}
	if snap.Obs.Counters["cluster_leaves"] != 1 {
		t.Fatalf("cluster_leaves = %d, want 1", snap.Obs.Counters["cluster_leaves"])
	}
	// The leaver is gracefully shut down afterwards, not killed — its
	// engine drains cleanly in the test cleanup.
}

// TestDrainAndRejoin is the rolling-restart idiom: drain a node (it leaves
// the ring but stays dialable), then rejoin it; tenants keep being served
// correctly at every step, including ones that moved twice.
func TestDrainAndRejoin(t *testing.T) {
	tenants := testTenants(8)
	tc := startKeylessCluster(t, 3, tenants)
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    tc.backendList(),
		Replicas:    2,
		MaxAttempts: 3,
		Health:      elasticHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	registerPerCandidateSet(t, tc, client.Router(), tenants)

	a, b := tc.encrypt(t, 9), tc.encrypt(t, 13)
	checkAll := func(stage string) {
		t.Helper()
		for _, tenant := range tenants {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			prod, _, err := client.Mul(ctx, tenant, a, b)
			cancel()
			if err != nil {
				t.Fatalf("%s: tenant %s: %v", stage, tenant, err)
			}
			if got := tc.decrypt(prod); got != 117 {
				t.Fatalf("%s: tenant %s: 9*13 = %d", stage, tenant, got)
			}
		}
	}
	checkAll("before drain")

	node := tc.backends[2]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.Router().Drain(ctx, node.id); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := len(client.Stats().Members); got != 2 {
		t.Fatalf("membership size %d after drain, want 2", got)
	}
	checkAll("after drain")

	report, err := client.Router().Join(ctx, Backend{ID: node.id, Addr: node.addr})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := len(client.Stats().Members); got != 3 {
		t.Fatalf("membership size %d after rejoin, want 3", got)
	}
	if report.Tenants == 0 {
		t.Fatal("rejoin moved no tenants back")
	}
	checkAll("after rejoin")

	snap := client.Stats()
	if snap.Obs.Counters["cluster_drains"] != 1 || snap.Obs.Counters["cluster_joins"] != 1 {
		t.Fatalf("drain/join counters = %d/%d, want 1/1",
			snap.Obs.Counters["cluster_drains"], snap.Obs.Counters["cluster_joins"])
	}
}

// TestCandidatesSkipEjectedBeforeSlicing is the candidate-list contract: a
// tenant whose hash-primary's circuit is open still gets a FULL candidate
// set (Replicas long), drawn from the nodes further along the ring — the
// filter runs before the slice, not after.
func TestCandidatesSkipEjectedBeforeSlicing(t *testing.T) {
	tenants := testTenants(16)
	tc := startCluster(t, 3, tenants)
	client, err := NewClient(Config{
		Params:      tc.params,
		Backends:    tc.backendList(),
		Replicas:    2,
		MaxAttempts: 3,
		Health: HealthConfig{
			Interval:      20 * time.Millisecond,
			Timeout:       250 * time.Millisecond,
			FailThreshold: 2,
			BackoffMax:    200 * time.Millisecond,
			Seed:          1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	victim := tc.backends[0]
	var victimTenant string
	for _, tenant := range tenants {
		if client.Router().Candidates(tenant)[0] == victim.id {
			victimTenant = tenant
			break
		}
	}
	if victimTenant == "" {
		t.Fatal("victim is primary for no tenant; test is vacuous")
	}
	victim.kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ejected := false
		for _, st := range client.Stats().Backends {
			if st.ID == victim.id && st.State == StateEjected.String() {
				ejected = true
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	got := client.Router().Candidates(victimTenant)
	if len(got) != 2 {
		t.Fatalf("candidates for tenant with ejected primary = %v, want a full set of 2", got)
	}
	for _, id := range got {
		if id == victim.id {
			t.Fatalf("ejected node %s still in candidate set %v", victim.id, got)
		}
	}
}

// TestAdminWireCommand drives a membership change end to end over the wire:
// a stock cloud.Client sends CmdAdmin drain/join to the herouter front-end.
func TestAdminWireCommand(t *testing.T) {
	tenants := testTenants(6)
	tc := startKeylessCluster(t, 3, tenants)
	router, err := NewRouter(Config{
		Params:   tc.params,
		Backends: tc.backendList(),
		Replicas: 2,
		Health:   elasticHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	registerPerCandidateSet(t, tc, router, tenants)

	proxy := NewServer(tc.params, router, nil)
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proxy.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		proxy.Shutdown(ctx)
		<-done
	})

	cl, err := cloud.Dial(addr, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	drained := tc.backends[2]
	reply, err := cl.Admin(ctx, &cloud.AdminRequest{Op: cloud.AdminDrain, Node: drained.id})
	if err != nil {
		t.Fatalf("admin drain: %v", err)
	}
	if len(reply.Members) != 2 {
		t.Fatalf("drain reply members %v, want 2", reply.Members)
	}
	reply, err = cl.Admin(ctx, &cloud.AdminRequest{Op: cloud.AdminJoin, Node: drained.id, Addr: drained.addr})
	if err != nil {
		t.Fatalf("admin join: %v", err)
	}
	if len(reply.Members) != 3 {
		t.Fatalf("join reply members %v, want 3", reply.Members)
	}
	// Unknown op surfaces as a typed error, and the connection survives.
	if _, err := cl.Admin(ctx, &cloud.AdminRequest{Op: "explode", Node: "x"}); err == nil {
		t.Fatal("unknown admin op accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after admin error: %v", err)
	}
	// Leaving the last nodes one by one stops at one member.
	if _, err := cl.Admin(ctx, &cloud.AdminRequest{Op: cloud.AdminLeave, Node: tc.backends[2].id}); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if _, err := cl.Admin(ctx, &cloud.AdminRequest{Op: cloud.AdminLeave, Node: tc.backends[1].id}); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if _, err := cl.Admin(ctx, &cloud.AdminRequest{Op: cloud.AdminLeave, Node: tc.backends[0].id}); err == nil {
		t.Fatal("removing the last ring member was allowed")
	}
}

// TestWatchMembership drives the file-watch path with an injected loader:
// the router applies joins and leaves as the desired membership changes.
func TestWatchMembership(t *testing.T) {
	tenants := testTenants(6)
	tc := startKeylessCluster(t, 3, tenants) // node-2 is the spare
	router, err := NewRouter(Config{
		Params:   tc.params,
		Backends: tc.backendList()[:2],
		Replicas: 2,
		Health:   elasticHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	registerPerCandidateSet(t, tc, router, tenants)

	var mu sync.Mutex
	want := map[string]string{
		tc.backends[0].id: tc.backends[0].addr,
		tc.backends[1].id: tc.backends[1].addr,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		router.WatchMembership(ctx, func() (map[string]string, error) {
			mu.Lock()
			defer mu.Unlock()
			out := make(map[string]string, len(want))
			for k, v := range want {
				out[k] = v
			}
			return out, nil
		}, 20*time.Millisecond)
	}()

	waitMembers := func(n int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for router.ring.Size() != n {
			if time.Now().After(deadline) {
				t.Fatalf("membership never reached %d: %v", n, router.ring.Members())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Grow: the watcher should join the spare.
	mu.Lock()
	want[tc.backends[2].id] = tc.backends[2].addr
	mu.Unlock()
	waitMembers(3)
	// Shrink back.
	mu.Lock()
	delete(want, tc.backends[2].id)
	mu.Unlock()
	waitMembers(2)
	cancel()
	<-watchDone
}
