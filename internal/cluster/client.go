package cluster

import (
	"context"
	"time"

	"repro/internal/cloud"
	"repro/internal/fv"
	"repro/internal/program"
)

// Client is the cluster-aware client: the same operations as cloud.Client,
// but routed — each call names a tenant, the consistent-hash ring picks that
// tenant's shard, and failures transparently fail over to replicas within
// the bounded retry budget. Safe for concurrent use (connections are
// pooled per backend).
type Client struct {
	r *Router
}

// NewClient builds a router over the configured backends and wraps it.
func NewClient(cfg Config) (*Client, error) {
	r, err := NewRouter(cfg)
	if err != nil {
		return nil, err
	}
	return &Client{r: r}, nil
}

// Router exposes the underlying router (stats, candidate inspection).
func (c *Client) Router() *Router { return c.r }

// Close stops health probing and drops pooled connections.
func (c *Client) Close() error { return c.r.Close() }

// Add adds two ciphertexts on the tenant's shard.
func (c *Client) Add(ctx context.Context, tenant string, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.r.Do(ctx, &cloud.Request{Cmd: cloud.CmdAdd, Tenant: tenant, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// Mul multiplies two ciphertexts on the tenant's shard (relinearized with
// the tenant's key, which must be registered on the shard's replicas).
func (c *Client) Mul(ctx context.Context, tenant string, a, b *fv.Ciphertext) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.r.Do(ctx, &cloud.Request{Cmd: cloud.CmdMul, Tenant: tenant, A: a, B: b})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// Rotate applies the Galois automorphism g on the tenant's shard.
func (c *Client) Rotate(ctx context.Context, tenant string, a *fv.Ciphertext, g int) (*fv.Ciphertext, time.Duration, error) {
	resp, err := c.r.Do(ctx, &cloud.Request{Cmd: cloud.CmdRotate, Tenant: tenant, G: uint32(g), A: a})
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, time.Duration(resp.ComputeNanos), nil
}

// RunProgram executes a whole compiled program on the tenant's shard: one
// routed round trip for the entire circuit, with the same replica failover
// as single ops (a program is idempotent — pure function of its inputs).
func (c *Client) RunProgram(ctx context.Context, tenant string, p *program.Program, inputs []*fv.Ciphertext) (*cloud.ProgramResponse, error) {
	data, err := p.EncodeBytes()
	if err != nil {
		return nil, err
	}
	return c.r.DoProgram(ctx, &cloud.Request{Tenant: tenant, ProgBytes: data, Inputs: inputs})
}

// Ping verifies at least one backend is routable and alive.
func (c *Client) Ping(ctx context.Context) error { return c.r.Ping(ctx) }

// Stats snapshots the cluster (membership, health, counters).
func (c *Client) Stats() RouterStats { return c.r.Stats() }
