package rlwe

import (
	"repro/internal/poly"
	"repro/internal/ring"
	"repro/internal/rns"
)

// KeySwitcher owns the scratch and the fused kernels of the gadget
// key-switch datapath: RNS decomposition digits, the two sum-of-products
// accumulators, and the recycled dispatch task that interleaves the digit
// NTTs with the MACs against the key halves. It is sized once at
// construction and reused forever, which keeps the steady-state hot paths of
// both scheme bindings allocation-free.
//
// Like the evaluators that embed it, a KeySwitcher is single-client:
// concurrent key switching needs one per goroutine.
type KeySwitcher struct {
	pool  *poly.Pool
	tr    *poly.Transformer
	basis *rns.Basis
	mods  []ring.Modulus
	n     int

	digits     []poly.RNSPoly
	sop0, sop1 poly.RNSPoly
	task       sopTask
}

// NewKeySwitcher builds a switcher over basis (the live q basis — for a
// level-tracked scheme, one switcher per level) with tr transforming exactly
// that basis's rows.
func NewKeySwitcher(pool *poly.Pool, tr *poly.Transformer, basis *rns.Basis, n int) *KeySwitcher {
	return NewKeySwitcherExt(pool, tr, basis, basis.Mods, n)
}

// NewKeySwitcherExt builds a hybrid (special-modulus) switcher: digits still
// decompose over digitBasis, but each digit — and the two accumulators — is
// carried over mods, digitBasis's moduli followed by the extension rows. The
// caller's keys encrypt P·g_i·payload over the extended basis, so the SoP
// lands at P times the switched value and a ModDown by the special rows
// recovers it with the keyswitch noise divided by P — the standard GHS
// construction, and the reason a low-scale scheme like CKKS can rotate
// without drowning its message. With mods == digitBasis.Mods this is exactly
// the plain switcher.
func NewKeySwitcherExt(pool *poly.Pool, tr *poly.Transformer, digitBasis *rns.Basis, mods []ring.Modulus, n int) *KeySwitcher {
	if len(mods) < digitBasis.K() {
		panic("rlwe: keyswitch modulus set narrower than the digit basis")
	}
	for i := 0; i < digitBasis.K(); i++ {
		if mods[i].Q != digitBasis.Mods[i].Q {
			panic("rlwe: keyswitch moduli must start with the digit basis")
		}
	}
	ks := &KeySwitcher{pool: pool, tr: tr, basis: digitBasis, mods: mods, n: n}
	ks.digits = make([]poly.RNSPoly, digitBasis.K())
	for i := range ks.digits {
		ks.digits[i] = poly.NewRNSPoly(mods, n)
	}
	ks.sop0 = poly.NewRNSPoly(mods, n)
	ks.sop1 = poly.NewRNSPoly(mods, n)
	return ks
}

// Decompose RNS-decomposes x (coefficient domain) into the switcher's digit
// scratch and returns it. The slice is owned by the switcher; it is valid
// until the next Decompose.
func (ks *KeySwitcher) Decompose(x poly.RNSPoly) []poly.RNSPoly {
	rns.DecomposeRNSPoolInto(ks.pool, ks.basis, x, ks.digits)
	return ks.digits
}

// SumOfProducts runs the fused digit-NTT + MAC kernel: sop0 = Σ NTT(d_i)·k0_i,
// sop1 = Σ NTT(d_i)·k1_i, leaving both accumulators in the NTT domain
// (InverseSoP brings them back). digits is mutated in place — each digit row
// is forward-transformed as it is consumed. digits may come from Decompose
// or from an external decomposition (the traditional word gadget) as long as
// its rows match the switcher's basis.
func (ks *KeySwitcher) SumOfProducts(digits, k0, k1 []poly.RNSPoly) {
	t := &ks.task
	t.tables, t.digits = ks.tr.Tables, digits
	t.k0, t.k1 = k0, k1
	t.sop0, t.sop1 = ks.sop0.Rows, ks.sop1.Rows
	t.raw = rawSOPSafe(ks.mods, len(digits))
	ks.pool.RunTask(ks.n*len(ks.sop0.Rows), len(ks.sop0.Rows), t)
}

// InverseSoP inverse-transforms both accumulators back to the coefficient
// domain.
func (ks *KeySwitcher) InverseSoP() {
	ks.tr.Inverse(ks.sop0)
	ks.tr.Inverse(ks.sop1)
}

// Sop0 returns the c0-side accumulator (switcher-owned scratch).
func (ks *KeySwitcher) Sop0() poly.RNSPoly { return ks.sop0 }

// Sop1 returns the c1-side accumulator (switcher-owned scratch).
func (ks *KeySwitcher) Sop1() poly.RNSPoly { return ks.sop1 }

// sopTask fuses the key-switch digit NTTs with the MACs, one residue row per
// task: row j forward-transforms every digit's j-th row and immediately
// accumulates it against both key halves while it is hot in cache. The
// per-row accumulation order over digits matches the unfused "transform all
// digits, then MAC" schedule exactly, so results are bit-identical; only the
// interleaving across rows changes.
type sopTask struct {
	tables     []*poly.NTTTable
	digits     []poly.RNSPoly
	k0, k1     []poly.RNSPoly
	sop0, sop1 []poly.Poly
	raw        bool // lazy raw accumulation is in range (see rawSOPSafe)
}

func (t *sopTask) RunIndex(j int) {
	tab := t.tables[j]
	m := tab.Mod
	s0 := t.sop0[j].Coeffs
	s1 := t.sop1[j].Coeffs
	if t.raw {
		// Raw MAC schedule: accumulate the unreduced products of every digit
		// (one multiply per lane) and Barrett-reduce once at the end — the
		// same Σ mod q, at roughly half the multiplies of the eager schedule.
		for i := range t.digits {
			d := t.digits[i].Rows[j].Coeffs
			tab.Forward(d)
			if i == 0 {
				m.VecMulRawInto(s0, d, t.k0[i].Rows[j].Coeffs)
				m.VecMulRawInto(s1, d, t.k1[i].Rows[j].Coeffs)
			} else {
				m.VecMulAddRawInto(s0, d, t.k0[i].Rows[j].Coeffs)
				m.VecMulAddRawInto(s1, d, t.k1[i].Rows[j].Coeffs)
			}
		}
		m.VecReduceInto(s0, s0)
		m.VecReduceInto(s1, s1)
		return
	}
	for c := range s0 {
		s0[c] = 0
	}
	for c := range s1 {
		s1[c] = 0
	}
	for i := range t.digits {
		d := t.digits[i].Rows[j].Coeffs
		tab.Forward(d)
		m.VecMulAddInto(s0, d, t.k0[i].Rows[j].Coeffs)
		m.VecMulAddInto(s1, d, t.k1[i].Rows[j].Coeffs)
	}
}

// rawSOPSafe reports whether k raw digit·key products of residues modulo the
// widest of mods can be summed in a uint64 without leaving VecReduceInto's
// input range: k·(maxQ-1)² < 2^63. True for every paper-scale configuration
// (six 30-bit digits sum below 2^62.6); a wider basis falls back to the
// eagerly reduced MAC schedule.
func rawSOPSafe(mods []ring.Modulus, k int) bool {
	var maxQ uint64
	for _, m := range mods {
		if m.Q > maxQ {
			maxQ = m.Q
		}
	}
	if k <= 0 || maxQ < 2 || maxQ >= 1<<32 {
		return false
	}
	return (maxQ-1)*(maxQ-1) < (uint64(1)<<63)/uint64(k)
}
