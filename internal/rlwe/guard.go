package rlwe

// BudgetGuard is the admission-control hook the serving engine screens
// hinted operations through, shared by the scheme bindings. The budget is a
// scalar in bits whose meaning is scheme-specific — remaining noise budget
// for BFV (decryption fails when it reaches zero), remaining significand
// precision for CKKS (results degrade below the application's error bound) —
// but the engine's decision is the same: predict the budget after the
// requested operation and refuse up front if it would cross the floor,
// instead of spending accelerator cycles producing garbage.
type BudgetGuard interface {
	// Fresh returns the budget of a freshly encrypted ciphertext.
	Fresh() float64
	// AfterAdd predicts the budget after adding ciphertexts with budgets a
	// and b.
	AfterAdd(a, b float64) float64
	// AfterMul predicts the budget after multiplying (with relinearization —
	// and, for CKKS, rescaling) ciphertexts with budgets a and b.
	AfterMul(a, b float64) float64
	// AfterGalois predicts the budget after a Galois rotation of a
	// ciphertext with budget a.
	AfterGalois(a float64) float64
}
