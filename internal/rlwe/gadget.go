// Package rlwe holds the scheme-independent RLWE machinery shared by the
// scheme bindings (internal/fv, internal/ckks): the gadget key-switching key
// construction, the fused decompose/sum-of-products datapath that both
// relinearization and Galois rotation execute, and the budget-guard hook the
// serving engine screens operations through. BFV and CKKS differ in how they
// encode messages and manage error growth; the keyswitch core they run on
// the accelerator is the same instruction mix, which is why it lives here
// once.
package rlwe

import (
	"repro/internal/poly"
	"repro/internal/ring"
	"repro/internal/sampler"
)

// GenGadgetKey derives one gadget key-switching key: component i encrypts
// g_i·payload under the secret sHat, where the g_i are the per-digit scalar
// rows of the decomposition gadget (RNS gadget q*_i for the fast
// architecture, positional w^i for the traditional one). Relinearization
// (payload = s²), Galois switching (payload = σ_g(s)) and general key
// switching (payload = s_from) are the same construction with a different
// payload.
//
// All polynomials are over mods in the NTT domain; the sampling order (a
// uniform, then e Gaussian, per digit) is part of the key-file contract —
// seeded PRNGs must reproduce existing keys bit-for-bit.
func GenGadgetKey(prng *sampler.PRNG, gauss *sampler.Gaussian, tr *poly.Transformer,
	mods []ring.Modulus, n int, gadgets []poly.RNSPoly, sHat, payloadHat poly.RNSPoly,
) (ks0Hat, ks1Hat []poly.RNSPoly) {
	for i := range gadgets {
		a := sampler.UniformPoly(prng, mods, n)
		e := gauss.SamplePoly(prng, mods, n)
		aHat := a.Clone()
		tr.Forward(aHat)

		// ks0_i = -(a·s + e) + g_i·payload.
		body := poly.NewRNSPoly(mods, n)
		aHat.MulInto(sHat, body)
		tr.Inverse(body)
		body.AddInto(e, body)
		body.NegInto(body)
		for j := range mods {
			gs := poly.NewPoly(mods[j], n)
			// g_i·payload has NTT rows payloadHat scaled by the row constant;
			// bring it back to coefficients before the addition.
			payloadHat.Rows[j].ScalarMulInto(gadgets[i].Rows[j].Coeffs[0], gs)
			tr.Tables[j].Inverse(gs.Coeffs)
			body.Rows[j].AddInto(gs, body.Rows[j])
		}
		tr.Forward(body)
		ks0Hat = append(ks0Hat, body)
		ks1Hat = append(ks1Hat, aHat)
	}
	return ks0Hat, ks1Hat
}
