package rlwe

import (
	"repro/internal/poly"
	"repro/internal/ring"
)

// Galois automorphisms σ_g: a(x) ↦ a(x^g) mod (x^n + 1) for odd g. Both
// scheme bindings implement slot rotation as an automorphism followed by the
// gadget key switch; the index permutation is scheme-independent and lives
// here.

// AutomorphRowInto computes dst = σ_g(src) for one residue row in
// coefficient representation: coefficient i moves to position i·g mod 2n,
// negated when the exponent wraps past n (x^n ≡ -1). dst must not alias src.
func AutomorphRowInto(m ring.Modulus, g int, src, dst poly.Poly) {
	n := len(src.Coeffs)
	for i := 0; i < n; i++ {
		j := (i * g) % (2 * n)
		v := src.Coeffs[i]
		if j >= n {
			j -= n
			v = m.Neg(v)
		}
		dst.Coeffs[j] = v
	}
}

// AutomorphInto computes σ_g over all residue rows (coefficient domain).
// dst must not alias src.
func AutomorphInto(g int, src, dst poly.RNSPoly) {
	for i := range src.Rows {
		AutomorphRowInto(src.Rows[i].Mod, g, src.Rows[i], dst.Rows[i])
	}
}
