package engine

import (
	"sort"
	"sync"

	"repro/internal/ckks"
	"repro/internal/fv"
)

// keyStore is the authoritative registry of tenant evaluation keys. Keys are
// kept exactly as generated — in NTT form over the q basis — which is the
// representation the co-processor consumes; there is no per-use transform.
type keyStore struct {
	mu      sync.RWMutex
	tenants map[string]*tenantKeys
}

type tenantKeys struct {
	relin  *fv.RelinKey
	galois map[int]*fv.GaloisKey
	// The CKKS keys live alongside the FV keys in the same namespace: one
	// tenant, two schemes.
	ckksRelin  *ckks.RelinKey
	ckksGalois map[int]*ckks.GaloisKey
}

func newKeyStore() *keyStore {
	return &keyStore{tenants: make(map[string]*tenantKeys)}
}

func (s *keyStore) tenant(name string) *tenantKeys {
	t := s.tenants[name]
	if t == nil {
		t = &tenantKeys{
			galois:     make(map[int]*fv.GaloisKey),
			ckksGalois: make(map[int]*ckks.GaloisKey),
		}
		s.tenants[name] = t
	}
	return t
}

func (s *keyStore) setRelin(tenant string, rk *fv.RelinKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).relin = rk
}

func (s *keyStore) setGalois(tenant string, gk *fv.GaloisKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).galois[gk.G] = gk
}

func (s *keyStore) relin(tenant string) *fv.RelinKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tenants[tenant]; t != nil {
		return t.relin
	}
	return nil
}

func (s *keyStore) galois(tenant string, g int) *fv.GaloisKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tenants[tenant]; t != nil {
		return t.galois[g]
	}
	return nil
}

func (s *keyStore) setCKKSRelin(tenant string, rk *ckks.RelinKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).ckksRelin = rk
}

func (s *keyStore) setCKKSGalois(tenant string, gk *ckks.GaloisKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).ckksGalois[gk.G] = gk
}

func (s *keyStore) ckksRelinKey(tenant string) *ckks.RelinKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tenants[tenant]; t != nil {
		return t.ckksRelin
	}
	return nil
}

func (s *keyStore) ckksGaloisKey(tenant string, g int) *ckks.GaloisKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tenants[tenant]; t != nil {
		return t.ckksGalois[g]
	}
	return nil
}

// TenantKeySet is one tenant's complete evaluation-key state, both schemes
// — the unit key-state migration moves between nodes. Galois keys are
// ordered by element so serialization is deterministic.
type TenantKeySet struct {
	Relin      *fv.RelinKey
	Galois     []*fv.GaloisKey
	CKKSRelin  *ckks.RelinKey
	CKKSGalois []*ckks.GaloisKey
}

// Empty reports whether the set carries no keys at all.
func (ks *TenantKeySet) Empty() bool {
	return ks == nil || (ks.Relin == nil && len(ks.Galois) == 0 &&
		ks.CKKSRelin == nil && len(ks.CKKSGalois) == 0)
}

// Count returns how many individual keys the set carries.
func (ks *TenantKeySet) Count() int {
	if ks == nil {
		return 0
	}
	n := len(ks.Galois) + len(ks.CKKSGalois)
	if ks.Relin != nil {
		n++
	}
	if ks.CKKSRelin != nil {
		n++
	}
	return n
}

// export snapshots the tenant's keys, nil if the tenant is unknown. The key
// objects themselves are shared, not copied: they are immutable after
// registration.
func (s *keyStore) export(tenant string) *TenantKeySet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tenants[tenant]
	if t == nil {
		return nil
	}
	ks := &TenantKeySet{Relin: t.relin, CKKSRelin: t.ckksRelin}
	gs := make([]int, 0, len(t.galois))
	for g := range t.galois {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		ks.Galois = append(ks.Galois, t.galois[g])
	}
	gs = gs[:0]
	for g := range t.ckksGalois {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		ks.CKKSGalois = append(ks.CKKSGalois, t.ckksGalois[g])
	}
	return ks
}

// importSet registers every key in ks under the tenant, replacing keys of
// the same identity and keeping any others already present.
func (s *keyStore) importSet(tenant string, ks *TenantKeySet) {
	if ks == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	if ks.Relin != nil {
		t.relin = ks.Relin
	}
	for _, gk := range ks.Galois {
		t.galois[gk.G] = gk
	}
	if ks.CKKSRelin != nil {
		t.ckksRelin = ks.CKKSRelin
	}
	for _, gk := range ks.CKKSGalois {
		t.ckksGalois[gk.G] = gk
	}
}

// names returns the registered tenant namespaces, sorted.
func (s *keyStore) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// residentKey identifies one evaluation key in a worker's cache. kind
// distinguishes the relin key (g = 0 unused) from Galois keys.
type residentKey struct {
	tenant string
	kind   OpKind
	g      int
}

// keyCache models the co-processor's on-chip key residency: the paper
// streams the relinearization key from DDR during every Mult (Sec. V-D,
// "the DMA feeds the relinearization key components while the RPAUs
// compute"); a key already resident skips that stream. The cache is LRU
// over whole keys and is owned by exactly one worker goroutine, so it
// needs no locking.
type keyCache struct {
	cap   int
	order []residentKey // front = least recently used
}

func newKeyCache(capacity int) *keyCache {
	return &keyCache{cap: capacity}
}

// touch marks id as used. It reports whether the key was already resident;
// on a miss the least recently used key is evicted if the cache is full,
// with the victim's identity returned so the caller can attribute the
// eviction to its tenant.
func (c *keyCache) touch(id residentKey) (hit bool, victim residentKey, evicted bool) {
	for i, k := range c.order {
		if k == id {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), id)
			return true, residentKey{}, false
		}
	}
	if len(c.order) >= c.cap {
		victim = c.order[0]
		c.order = c.order[1:]
		evicted = true
	}
	c.order = append(c.order, id)
	return false, victim, evicted
}

// len reports how many keys are resident.
func (c *keyCache) len() int { return len(c.order) }
