package engine

import (
	"time"
)

// batchKey identifies operations that can share one dispatch: they use the
// same evaluation key (or none), so a worker loads key material once for
// the whole group. This is the serving-layer analogue of the block-level
// pipeline in internal/sched: the co-processor's expensive resource (the
// relinearization-key DMA stream) is amortized across the block.
type batchKey struct {
	tenant string
	kind   OpKind
	g      int // Galois element; zero except for OpRotate
}

func keyOf(op Op) batchKey {
	k := batchKey{tenant: op.Tenant, kind: op.Kind}
	if op.Kind == OpRotate {
		k.g = op.G
	}
	if op.Kind == OpCKKSRotate {
		// Group by rotation count; the worker resolves the Galois element.
		k.g = op.R
	}
	return k
}

// batch is one unit of worker dispatch.
type batch struct {
	key    batchKey
	reqs   []*request
	opened time.Time // when the first request was admitted to this batch
}

// dispatch is the batcher goroutine: it drains the admission queue into
// per-key pending groups and emits them to the worker pool. A group is
// emitted once it reaches MaxBatch; partial groups are emitted when the
// queue runs empty (plus an optional BatchLinger wait for stragglers).
// Requests that expired while queued are dropped here, before any worker
// sees them.
//
// Emission order is weighted-fair across tenants rather than FIFO: every
// tenant accumulates virtual time — ops emitted divided by its
// Config.TenantWeights weight — and whenever anything is emitted, pending
// groups go out in ascending virtual-time order (arrival order breaks
// ties). A tenant flooding full batches therefore cannot starve a light
// tenant's partial batch: the light tenant's virtual time stays behind the
// flooder's, so its group jumps the line at the next emission point. An
// idle tenant's clock is clamped forward on re-activation, so sitting out
// earns no credit.
func (e *Engine) dispatch() {
	defer e.wg.Done()
	defer close(e.batches)

	pending := make(map[batchKey]*batch)
	var order []batchKey // arrival order: iteration + virtual-time tie-break
	total := 0

	vtime := make(map[string]float64) // per-tenant virtual clock
	var globalVT float64              // virtual start of the last emission
	weight := func(tenant string) float64 {
		if w := e.cfg.TenantWeights[tenant]; w > 0 {
			return float64(w)
		}
		return 1
	}
	// emitFair hands b to the pool and advances its tenant's clock by the
	// weighted op count, clamping idle tenants up to globalVT first.
	emitFair := func(b *batch) {
		t := b.key.tenant
		start := vtime[t]
		if start < globalVT {
			start = globalVT
		}
		vtime[t] = start + float64(len(b.reqs))/weight(t)
		globalVT = start
		e.emit(b)
	}
	// emitNext emits the pending group whose tenant has the least virtual
	// time (earliest-arrived wins ties) and returns its key.
	emitNext := func() batchKey {
		best := -1
		for i, k := range order {
			if best < 0 || vtime[k.tenant] < vtime[order[best].tenant] {
				best = i
			}
		}
		k := order[best]
		order = append(order[:best], order[best+1:]...)
		b := pending[k]
		delete(pending, k)
		total -= len(b.reqs)
		emitFair(b)
		return k
	}

	admit := func(r *request) {
		if r.expired(time.Now()) {
			e.expire(r)
			return
		}
		k := keyOf(r.op)
		b := pending[k]
		if b == nil {
			b = &batch{key: k, opened: time.Now()}
			pending[k] = b
			order = append(order, k)
		}
		b.reqs = append(b.reqs, r)
		total++
		if len(b.reqs) >= e.cfg.MaxBatch {
			// A full group forces an emission point; everything cheaper in
			// virtual time goes out ahead of it.
			for pending[k] != nil {
				emitNext()
			}
		}
	}
	flushAll := func() {
		for len(order) > 0 {
			emitNext()
		}
		total = 0
	}

	for {
		if total == 0 {
			// Idle: block for the next request.
			r, ok := <-e.queue
			if !ok {
				return
			}
			admit(r)
			continue
		}
		// Pending work exists: keep draining without blocking; when the
		// queue is empty (optionally after a linger window) flush what we
		// have. emit blocks while all workers are busy, which is exactly
		// when the admission queue should fill and start rejecting.
		if e.cfg.BatchLinger <= 0 {
			select {
			case r, ok := <-e.queue:
				if !ok {
					flushAll()
					return
				}
				admit(r)
			default:
				flushAll()
			}
			continue
		}
		linger := time.NewTimer(e.cfg.BatchLinger)
		select {
		case r, ok := <-e.queue:
			if !ok {
				flushAll()
				linger.Stop()
				return
			}
			admit(r)
			linger.Stop()
		case <-linger.C:
			flushAll()
		}
	}
}

// emit hands a batch to the worker pool, counting it and recording how long
// the batch spent assembling (first admit to dispatch).
func (e *Engine) emit(b *batch) {
	e.m.batches.Add(1)
	e.m.batchedOps.Add(uint64(len(b.reqs)))
	e.m.batchAssembly.Observe(time.Since(b.opened))
	e.batches <- b
}
