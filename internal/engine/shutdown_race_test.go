package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineShutdownRacesSubmits hammers Shutdown with concurrent Submits:
// everything admitted before the close must complete (and decrypt
// correctly), every submit that loses the race must get the typed
// ErrShutdown, the counters must balance, and no goroutine may leak. Run
// with -race; the interleavings are the test.
func TestEngineShutdownRacesSubmits(t *testing.T) {
	baseline := runtime.NumGoroutine()

	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e, err := New(Config{Params: params, Workers: 2, QueueDepth: 64, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.SetRelinKey(tn.name, tn.rk)

	a := tn.encrypt(params, 9, 301)
	b := tn.encrypt(params, 13, 302)

	const submitters = 8
	var (
		completed atomic.Uint64
		shutdowns atomic.Uint64
		overloads atomic.Uint64
		started   sync.WaitGroup
		wg        sync.WaitGroup
	)
	started.Add(submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first := true
			for {
				res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
				if first {
					started.Done()
					first = false
				}
				switch {
				case err == nil:
					if got := tn.decrypt(params, res.Ct); got != 117 {
						t.Errorf("drained request decrypted to %d, want 117", got)
					}
					completed.Add(1)
				case errors.Is(err, ErrShutdown):
					// The typed late-submit error; this racer is done.
					shutdowns.Add(1)
					return
				case errors.Is(err, ErrOverloaded):
					overloads.Add(1)
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}()
	}

	// Let every submitter get at least one request in flight, then shut
	// down while they keep hammering.
	started.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()

	if got := shutdowns.Load(); got != submitters {
		t.Fatalf("%d of %d submitters saw ErrShutdown", got, submitters)
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed before the drain; the race window never opened")
	}
	// A second Shutdown is a no-op, and late submits keep getting the typed
	// error.
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("late submit returned %v, want ErrShutdown", err)
	}

	// Every admitted request was accounted exactly once: nothing dropped on
	// the floor mid-drain.
	st := e.Stats()
	if st.Submitted != st.Completed+st.Failed+st.Expired {
		t.Fatalf("counters leak requests: submitted %d != completed %d + failed %d + expired %d",
			st.Submitted, st.Completed, st.Failed, st.Expired)
	}
	if st.Completed != completed.Load() {
		t.Fatalf("engine counted %d completions, clients saw %d", st.Completed, completed.Load())
	}

	// No goroutine leaks: the worker pool, batcher, and per-request
	// machinery must all be gone. (No leak-detector dependency — poll the
	// runtime until the count settles back to the pre-engine baseline.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
