package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/obs"
	"repro/internal/sampler"
)

// tenant bundles one client's key material for tests.
type tenant struct {
	name string
	sk   *fv.SecretKey
	pk   *fv.PublicKey
	rk   *fv.RelinKey
}

func newTenant(t testing.TB, params *fv.Params, name string, seed uint64) *tenant {
	t.Helper()
	kg := fv.NewKeyGenerator(params, sampler.NewPRNG(seed))
	sk, pk, rk := kg.GenKeys()
	return &tenant{name: name, sk: sk, pk: pk, rk: rk}
}

func (tn *tenant) encrypt(params *fv.Params, v uint64, seed uint64) *fv.Ciphertext {
	enc := fv.NewEncryptor(params, tn.pk, sampler.NewPRNG(seed))
	pt := fv.NewPlaintext(params)
	pt.Coeffs[0] = v % params.Cfg.T
	return enc.Encrypt(pt)
}

func (tn *tenant) decrypt(params *fv.Params, ct *fv.Ciphertext) uint64 {
	return fv.NewDecryptor(params, tn.sk).Decrypt(ct).Coeffs[0]
}

func testParams(t testing.TB) *fv.Params {
	t.Helper()
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func newEngine(t testing.TB, params *fv.Params, cfg Config) *Engine {
	t.Helper()
	cfg.Params = params
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	return e
}

// TestEngineMulMatchesAccelerator: results served through the queue →
// batcher → worker pool must be bit-for-bit the ones a sequential
// core.Accelerator produces.
func TestEngineMulMatchesAccelerator(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 2, MaxBatch: 4})
	e.SetRelinKey(tn.name, tn.rk)

	ref, err := core.New(params, hwsim.VariantHPS, 1)
	if err != nil {
		t.Fatal(err)
	}

	const ops = 8
	type pair struct{ a, b *fv.Ciphertext }
	var inputs []pair
	for i := 0; i < ops; i++ {
		inputs = append(inputs, pair{
			a: tn.encrypt(params, uint64(i+2), uint64(100+i)),
			b: tn.encrypt(params, uint64(i+5), uint64(200+i)),
		})
	}

	results := make([]*fv.Ciphertext, ops)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: inputs[i].a, B: inputs[i].b})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res.Ct
		}(i)
	}
	wg.Wait()

	for i, in := range inputs {
		if results[i] == nil {
			t.Fatalf("op %d missing result", i)
		}
		want, _, err := ref.Mul(in.a, in.b, tn.rk)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Equal(want) {
			t.Fatalf("op %d: engine result differs from sequential accelerator", i)
		}
		got := tn.decrypt(params, results[i])
		exp := uint64((i + 2) * (i + 5) % 257)
		if got != exp {
			t.Fatalf("op %d decrypts to %d, want %d", i, got, exp)
		}
	}

	st := e.Stats()
	if st.Completed != ops {
		t.Fatalf("completed = %d, want %d", st.Completed, ops)
	}
	if st.KeyLoads == 0 {
		t.Fatal("no evaluation-key loads recorded")
	}
}

// TestEngineSaturationRejects: a full admission queue must reject
// immediately with ErrOverloaded — bounded memory under overload, load is
// shed rather than queued. Offered load is 10× the queue depth.
func TestEngineSaturationRejects(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 11)

	const depth = 4
	gate := make(chan struct{})
	e := newEngine(t, params, Config{Workers: 1, QueueDepth: depth, MaxBatch: 1})
	e.SetRelinKey(tn.name, tn.rk)
	var gateOnce sync.Once
	e.testExecHook = func(int) {
		gateOnce.Do(func() { <-gate })
	}

	a := tn.encrypt(params, 3, 1)
	b := tn.encrypt(params, 4, 2)

	// Stall the single worker on its first batch, then saturate.
	firstDone := make(chan error, 1)
	go func() {
		_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
		firstDone <- err
	}()
	waitFor(t, func() bool { return e.Stats().Submitted >= 1 })
	// The dispatcher may have pulled up to one more request out of the
	// queue and be blocked handing it to the stalled pool, so admit until
	// the queue channel itself is full.
	waitForQueueFull(t, e, tn, params)
	baseRejected := e.Stats().Rejected

	const offered = 10 * depth
	var rejected, admitted int
	done := make(chan error, offered)
	for i := 0; i < offered; i++ {
		go func(i int) {
			_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
			done <- err
		}(i)
	}
	// Every extra submit must resolve quickly: either rejected outright or
	// (for the few that squeeze into freed slots later) completed.
	timeout := time.After(30 * time.Second)
	resolved := 0
	for resolved < offered {
		select {
		case err := <-done:
			resolved++
			switch {
			case errors.Is(err, ErrOverloaded):
				rejected++
			case err == nil:
				admitted++
			default:
				t.Fatalf("unexpected submit error: %v", err)
			}
			if resolved == offered/2 {
				close(gate) // release the worker midway; the backlog drains
			}
		case <-timeout:
			t.Fatalf("stuck: %d/%d submits resolved", resolved, offered)
		}
	}
	if rejected == 0 {
		t.Fatal("saturated queue never returned ErrOverloaded")
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("stalled op failed: %v", err)
	}

	st := e.Stats()
	if st.QueueLen > depth {
		t.Fatalf("queue grew beyond its bound: %d > %d", st.QueueLen, depth)
	}
	if got := st.Rejected - baseRejected; got != uint64(rejected) {
		t.Fatalf("rejected counter grew by %d, want %d", got, rejected)
	}
	t.Logf("offered %d (plus stalled 1 + prefill): admitted %d, rejected %d", offered, admitted, rejected)
}

// waitForQueueFull keeps submitting until a submit is rejected, proving the
// bounded queue is at capacity (the successful ones will drain later).
func waitForQueueFull(t *testing.T, e *Engine, tn *tenant, params *fv.Params) {
	t.Helper()
	a := tn.encrypt(params, 1, 3)
	b := tn.encrypt(params, 2, 4)
	deadline := time.After(30 * time.Second)
	for {
		errc := make(chan error, 1)
		go func() {
			_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
			errc <- err
		}()
		select {
		case err := <-errc:
			if errors.Is(err, ErrOverloaded) {
				return
			}
		case <-time.After(10 * time.Millisecond):
			// This submit was admitted and is waiting; keep going.
		case <-deadline:
			t.Fatal("queue never filled")
		}
	}
}

// TestEngineDeadlineDropsBeforeDispatch: a request whose deadline expires
// while it waits behind a stalled worker must be dropped without ever
// executing.
func TestEngineDeadlineDropsBeforeDispatch(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 13)

	gate := make(chan struct{})
	e := newEngine(t, params, Config{Workers: 1, QueueDepth: 8, MaxBatch: 1})
	e.SetRelinKey(tn.name, tn.rk)
	var gateOnce sync.Once
	e.testExecHook = func(int) {
		gateOnce.Do(func() { <-gate })
	}

	a := tn.encrypt(params, 3, 1)
	b := tn.encrypt(params, 4, 2)

	firstDone := make(chan error, 1)
	go func() {
		_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
		firstDone <- err
	}()
	waitFor(t, func() bool { return e.Stats().Submitted >= 1 })

	// This one queues behind the stalled worker with a deadline that will
	// lapse long before the worker frees up.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.Submit(ctx, Op{Kind: OpMul, A: a, B: b})
	if err == nil {
		t.Fatal("expired request was served")
	}
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v", err)
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("stalled op failed: %v", err)
	}
	waitFor(t, func() bool {
		st := e.Stats()
		return st.Expired >= 1 && st.Completed == 1
	})
	if st := e.Stats(); st.Completed != 1 {
		t.Fatalf("expired request executed: completed = %d, want 1", st.Completed)
	}
}

// TestEngineTenantKeyIsolation: concurrent tenants with distinct relin keys
// must never be relinearized with each other's keys, even with a
// single-slot cache forcing constant eviction. A cross-tenant mixup would
// decrypt to garbage.
func TestEngineTenantKeyIsolation(t *testing.T) {
	params := testParams(t)
	alice := newTenant(t, params, "alice", 21)
	bob := newTenant(t, params, "bob", 22)

	e := newEngine(t, params, Config{Workers: 2, MaxBatch: 2, KeyCacheSlots: 1})
	e.SetRelinKey(alice.name, alice.rk)
	e.SetRelinKey(bob.name, bob.rk)

	const perTenant = 6
	var wg sync.WaitGroup
	run := func(tn *tenant, base uint64) {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				x, y := base+uint64(i), base+uint64(i)+3
				a := tn.encrypt(params, x, uint64(1000)+x)
				b := tn.encrypt(params, y, uint64(2000)+y)
				res, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b})
				if err != nil {
					t.Errorf("%s op %d: %v", tn.name, i, err)
					return
				}
				if got, want := tn.decrypt(params, res.Ct), x*y%257; got != want {
					t.Errorf("%s op %d: decrypted %d, want %d (key cross-contamination?)", tn.name, i, got, want)
				}
			}(i)
		}
	}
	run(alice, 2)
	run(bob, 40)
	wg.Wait()

	st := e.Stats()
	if st.Completed != 2*perTenant {
		t.Fatalf("completed = %d, want %d", st.Completed, 2*perTenant)
	}
	if st.KeyEvictions == 0 && st.KeyLoads <= 2 {
		t.Logf("warning: cache churn not exercised (loads=%d evictions=%d)", st.KeyLoads, st.KeyEvictions)
	}
}

// TestEngineRotateAndAdd covers the two non-Mul paths end to end, including
// the missing-key error.
func TestEngineRotateAndAdd(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 31)
	kg := fv.NewKeyGenerator(params, sampler.NewPRNG(31))
	sk2, _, _ := kg.GenKeys()
	if !sk2.S.Equal(tn.sk.S) {
		t.Fatal("deterministic key regeneration out of sync")
	}
	const g = 3
	gk := kg.GenGaloisKey(sk2, g)

	e := newEngine(t, params, Config{Workers: 1})
	e.SetRelinKey(tn.name, tn.rk)
	e.SetGaloisKey(tn.name, gk)

	a := tn.encrypt(params, 9, 1)
	b := tn.encrypt(params, 13, 2)

	res, err := e.Submit(context.Background(), Op{Kind: OpAdd, A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.decrypt(params, res.Ct); got != 22 {
		t.Fatalf("9+13 = %d through the engine", got)
	}

	if _, err := e.Submit(context.Background(), Op{Kind: OpRotate, A: a, G: g}); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	// Missing Galois key must fail cleanly, not wedge the batch.
	if _, err := e.Submit(context.Background(), Op{Kind: OpRotate, A: a, G: 9}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("rotate without key returned %v, want ErrNoKey", err)
	}
	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: "stranger", A: a, B: b}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("mul without key returned %v, want ErrNoKey", err)
	}
}

// TestEngineShutdownDrains: Shutdown must finish everything already
// admitted, then reject new work with ErrShutdown.
func TestEngineShutdownDrains(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 41)
	e, err := New(Config{Params: params, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	e.SetRelinKey(tn.name, tn.rk)

	const ops = 6
	var wg sync.WaitGroup
	errs := make([]error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := tn.encrypt(params, uint64(i+2), uint64(10+i))
			b := tn.encrypt(params, uint64(i+3), uint64(20+i))
			_, errs[i] = e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
		}(i)
	}
	waitFor(t, func() bool { return e.Stats().Submitted >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		// Ops raced admission against shutdown: each either completed or
		// was turned away — never stranded.
		if err != nil && !errors.Is(err, ErrShutdown) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if _, err := e.Submit(context.Background(), Op{Kind: OpAdd, A: tn.encrypt(params, 1, 1), B: tn.encrypt(params, 2, 2)}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown submit returned %v, want ErrShutdown", err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestEngineBatchingAmortizesKeyLoads: with a gated worker letting the queue
// fill, same-tenant Muls must be grouped, so key loads ≪ ops.
func TestEngineBatchingAmortizesKeyLoads(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 51)

	gate := make(chan struct{})
	e := newEngine(t, params, Config{Workers: 1, QueueDepth: 16, MaxBatch: 8})
	e.SetRelinKey(tn.name, tn.rk)
	var gateOnce sync.Once
	e.testExecHook = func(int) {
		gateOnce.Do(func() { <-gate })
	}

	const ops = 8
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := tn.encrypt(params, uint64(i+2), uint64(10+i))
			b := tn.encrypt(params, uint64(i+3), uint64(20+i))
			if _, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b}); err != nil {
				t.Errorf("op %d: %v", i, err)
			}
		}(i)
	}
	// Let every op reach the queue behind the stalled worker, then open it.
	waitFor(t, func() bool { return e.Stats().Submitted == ops })
	close(gate)
	wg.Wait()

	st := e.Stats()
	if st.Completed != ops {
		t.Fatalf("completed %d, want %d", st.Completed, ops)
	}
	if st.Batches >= st.Completed {
		t.Fatalf("no batching happened: %d batches for %d ops", st.Batches, st.Completed)
	}
	if st.KeyLoads+st.KeyHits != st.Batches {
		t.Fatalf("key lookups (%d loads + %d hits) != %d batches", st.KeyLoads, st.KeyHits, st.Batches)
	}
	if st.AvgBatch <= 1 {
		t.Fatalf("average batch size %.2f, want > 1", st.AvgBatch)
	}
	if res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: tn.encrypt(params, 2, 300), B: tn.encrypt(params, 3, 301)}); err != nil {
		t.Fatal(err)
	} else if !res.KeyHit {
		t.Fatal("relin key not resident after batch")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExpvarRebindAcrossEngines pins the fix for the expvar registration
// leak: the old "skip if the name is taken" guard silently dropped every
// engine after the first, so tests (and restarted servers) saw stale stats.
// Now a later engine under the same name replaces the earlier binding, and
// Shutdown releases it.
func TestExpvarRebindAcrossEngines(t *testing.T) {
	params := testParams(t)
	const name = "engine-test-expvar"

	e1, err := New(Config{Params: params, Workers: 1, ExpvarName: name})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := obs.ExpvarValue(name).(Stats); !ok || st.Workers != 1 {
		t.Fatalf("first engine not visible under %q: %#v", name, obs.ExpvarValue(name))
	}

	// Second engine under the same name: must replace, not vanish.
	e2, err := New(Config{Params: params, Workers: 2, ExpvarName: name})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := obs.ExpvarValue(name).(Stats); !ok || st.Workers != 2 {
		t.Fatalf("second engine's stats dropped: %#v", obs.ExpvarValue(name))
	}

	// Shutting down the stale first engine must not clobber the live one.
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st, ok := obs.ExpvarValue(name).(Stats); !ok || st.Workers != 2 {
		t.Fatalf("stale shutdown clobbered the live binding: %#v", obs.ExpvarValue(name))
	}

	// Shutting down the live engine releases the name.
	if err := e2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := obs.ExpvarValue(name); v != nil {
		t.Fatalf("name still bound after shutdown: %#v", v)
	}
}

// TestStatsIncludesPoolAndBatchAssembly exercises the new observability
// surface end to end: pool accounting rides along in Stats when enabled,
// and dispatched batches record an assembly age.
func TestStatsIncludesPoolAndBatchAssembly(t *testing.T) {
	params := testParams(t)
	params.Pool.EnableMetrics()
	e, err := New(Config{Params: params, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	tn := newTenant(t, params, "", 5)
	e.SetRelinKey("", tn.rk)

	ct := tn.encrypt(params, 3, 9)
	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, A: ct, B: ct}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Pool == nil {
		t.Fatal("Stats.Pool missing with pool metrics enabled")
	}
	if st.Pool.Runs == 0 {
		t.Fatalf("pool recorded no runs through a Mul: %+v", st.Pool)
	}
	if st.BatchAssembly.Count == 0 {
		t.Fatal("no batch assembly observations")
	}
}

// TestEnginePipelinedStreamMatchesSequential: with Config.Pipelined set, a
// Mul batch executes as one overlapped DMA/compute stream — and because the
// prefetch only touches shadow memory-file slots, every result must stay
// bit-for-bit identical to the sequential accelerator. The stream's saved
// cycles must also show up in the stats ledger.
func TestEnginePipelinedStreamMatchesSequential(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 91)

	gate := make(chan struct{})
	e := newEngine(t, params, Config{Workers: 1, QueueDepth: 16, MaxBatch: 8, Pipelined: true})
	e.SetRelinKey(tn.name, tn.rk)
	var gateOnce sync.Once
	e.testExecHook = func(int) {
		gateOnce.Do(func() { <-gate })
	}

	ref, err := core.New(params, hwsim.VariantHPS, 1)
	if err != nil {
		t.Fatal(err)
	}

	const ops = 6
	type pair struct{ a, b *fv.Ciphertext }
	inputs := make([]pair, ops)
	for i := range inputs {
		inputs[i] = pair{
			a: tn.encrypt(params, uint64(i+2), uint64(400+i)),
			b: tn.encrypt(params, uint64(i+7), uint64(500+i)),
		}
	}

	results := make([]*Result, ops)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: inputs[i].a, B: inputs[i].b})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	// Stall the worker until every op is queued so they batch together.
	waitFor(t, func() bool { return e.Stats().Submitted == ops })
	close(gate)
	wg.Wait()

	for i, in := range inputs {
		if results[i] == nil {
			t.Fatalf("op %d missing result", i)
		}
		want, _, err := ref.Mul(in.a, in.b, tn.rk)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Ct.Equal(want) {
			t.Fatalf("op %d: pipelined result differs from sequential accelerator", i)
		}
		if got, exp := tn.decrypt(params, results[i].Ct), uint64((i+2)*(i+7)%257); got != exp {
			t.Fatalf("op %d decrypts to %d, want %d", i, got, exp)
		}
		// Any request that rode in a multi-op batch must have gone through
		// the stream path and report the stream's hidden transfer time.
		if results[i].Batch >= 2 {
			if !results[i].Pipelined {
				t.Fatalf("op %d: batch of %d was not pipelined", i, results[i].Batch)
			}
			if results[i].SavedCycles <= 0 {
				t.Fatalf("op %d: pipelined batch saved %d cycles, want > 0", i, results[i].SavedCycles)
			}
			if results[i].Report.ComputeCycles <= 0 || results[i].Report.SendCycles <= 0 {
				t.Fatalf("op %d: pipelined report missing cycle accounting: %+v", i, results[i].Report)
			}
		}
	}

	st := e.Stats()
	if st.Completed != ops {
		t.Fatalf("completed %d, want %d", st.Completed, ops)
	}
	if st.PipelinedBatches == 0 || st.PipelinedOps < 2 {
		t.Fatalf("no pipelined stream ran: %d batches, %d ops", st.PipelinedBatches, st.PipelinedOps)
	}
	if st.PipelinedSavedCycles == 0 {
		t.Fatal("pipelined stream hid zero transfer cycles")
	}
	// Exactly one key stream: the stream charges it to its first op only.
	if st.KeyLoads != 1 {
		t.Fatalf("key loads = %d, want 1", st.KeyLoads)
	}
}

// TestEnginePipelinedIntegrityFallback: a fault injected mid-stream must not
// produce a wrong result — the stream detects it, the batch falls back to
// the sequential path, and op-level integrity retries recover every request.
func TestEnginePipelinedIntegrityFallback(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 93)

	inj := faults.New(777)
	gate := make(chan struct{})
	e := newEngine(t, params, Config{
		Workers: 1, QueueDepth: 16, MaxBatch: 8, Pipelined: true,
		IntegrityChecks: true, FaultInjector: inj,
		MaxIntegrityRetries: 4, QuarantineAfter: -1,
	})
	e.SetRelinKey(tn.name, tn.rk)
	var gateOnce sync.Once
	e.testExecHook = func(int) {
		gateOnce.Do(func() { <-gate })
	}
	// One transient RPAU kill: it lands inside the stream, fails the whole
	// stream attempt, and the sequential fallback reruns the ops cleanly.
	inj.Arm(faults.Spec{Class: faults.ClassRPAU, After: 3, Mode: faults.ModeKill})

	const ops = 4
	results := make([]*Result, ops)
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := tn.encrypt(params, uint64(i+2), uint64(600+i))
			b := tn.encrypt(params, uint64(i+3), uint64(700+i))
			res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
			if err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	waitFor(t, func() bool { return e.Stats().Submitted == ops })
	close(gate)
	wg.Wait()

	for i, res := range results {
		if res == nil {
			continue // already reported
		}
		if got, exp := tn.decrypt(params, res.Ct), uint64((i+2)*(i+3)%257); got != exp {
			t.Fatalf("op %d decrypts to %d, want %d — corrupted result escaped", i, got, exp)
		}
	}
	if fired := inj.Stats().TotalFired; fired == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	st := e.Stats()
	if st.Completed != ops {
		t.Fatalf("completed %d, want %d", st.Completed, ops)
	}
	if st.Failed != 0 {
		t.Fatalf("failed %d, want 0 (fallback should recover)", st.Failed)
	}
}
