package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/fv"
	"repro/internal/hwsim"
)

// worker is one pool member: an application core driving its own simulated
// co-processor (one `core.Accelerator` with a single hwsim instance), plus
// the model of which evaluation keys are currently resident on that
// co-processor.
type worker struct {
	id    int
	accel *core.Accelerator
	cache *keyCache
	// ev is the software evaluator for program nodes the co-processor has
	// no instruction for (subtraction, plaintext operands, lazy
	// relinearization); their cost is still charged in modeled FPGA cycles
	// so makespans stay comparable.
	ev *fv.Evaluator
	// ckks, when non-nil, is the worker's approximate-arithmetic lane
	// (engine built with Config.CKKSParams).
	ckks *ckksWorker

	// Accumulated accounting, read concurrently by Stats.
	ops       atomic.Uint64
	simCycles atomic.Uint64 // hwsim.Cycles of compute + key streaming
	keyLoads  atomic.Uint64
	resident  atomic.Int64 // current key-cache occupancy, mirrored for Stats

	// integrityFails counts ops on this worker that tripped an integrity
	// check; quarantined is set when the worker is ejected from the pool.
	integrityFails atomic.Uint64
	quarantined    atomic.Bool
}

func newWorker(id int, accel *core.Accelerator, cacheSlots int, ev *fv.Evaluator) *worker {
	return &worker{id: id, accel: accel, cache: newKeyCache(cacheSlots), ev: ev}
}

// runBatch executes one batch on w: resolve the evaluation key once, charge
// the simulated key-DMA stream if the key is not resident, then run every
// still-live request sequentially on the worker's co-processor.
func (e *Engine) runBatch(w *worker, b *batch) {
	if e.testExecHook != nil {
		e.testExecHook(w.id)
	}
	tc := e.tenant(b.key.tenant)

	var (
		rk        *fv.RelinKey
		gk        *fv.GaloisKey
		crk       *ckks.RelinKey
		cgk       *ckks.GaloisKey
		keyCycles hwsim.Cycles
		keyHit    bool
		needsKey  bool
	)
	switch b.key.kind {
	case OpMul:
		needsKey = true
		if rk = e.keys.relin(b.key.tenant); rk == nil {
			e.failBatch(b, fmt.Errorf("%w: relinearization key for tenant %q", ErrNoKey, b.key.tenant))
			return
		}
	case OpRotate:
		needsKey = true
		if gk = e.keys.galois(b.key.tenant, b.key.g); gk == nil {
			e.failBatch(b, fmt.Errorf("%w: Galois key for element %d, tenant %q", ErrNoKey, b.key.g, b.key.tenant))
			return
		}
	case OpCKKSMul:
		needsKey = true
		if crk = e.keys.ckksRelinKey(b.key.tenant); crk == nil {
			e.failBatch(b, fmt.Errorf("%w: CKKS relinearization key for tenant %q", ErrNoKey, b.key.tenant))
			return
		}
	case OpCKKSRotate:
		needsKey = true
		g := e.cfg.CKKSParams.GaloisElementForRotation(b.key.g)
		if cgk = e.keys.ckksGaloisKey(b.key.tenant, g); cgk == nil {
			e.failBatch(b, fmt.Errorf("%w: CKKS Galois key for rotation %d (element %d), tenant %q", ErrNoKey, b.key.g, g, b.key.tenant))
			return
		}
	}
	if needsKey {
		id := residentKey{tenant: b.key.tenant, kind: b.key.kind, g: b.key.g}
		hit, victim, evicted := w.cache.touch(id)
		w.resident.Store(int64(w.cache.len()))
		keyHit = hit
		if evicted {
			e.keyEvicted(victim.tenant)
		}
		if hit {
			e.m.keyHits.Add(1)
		} else {
			e.m.keyLoads.Add(1)
			w.keyLoads.Add(1)
			tc.keyLoads.Add(1)
			var bytes int
			switch {
			case rk != nil:
				bytes = core.RelinKeyBytes(e.cfg.Params, rk)
			case gk != nil:
				bytes = core.GaloisKeyBytes(e.cfg.Params, gk)
			default:
				// CKKS keys: all level bundles stream to the co-processor.
				bytes = core.CKKSKeyBytes(e.cfg.CKKSParams, e.cfg.CKKSParams.MaxLevel())
			}
			keyCycles = w.accel.KeyStreamCycles(bytes)
			w.simCycles.Add(uint64(keyCycles))
		}
	}

	reqs := b.reqs
	if e.cfg.Pipelined && b.key.kind == OpMul && len(reqs) > 1 {
		var done bool
		reqs, done = e.runMulStream(w, b, tc, rk, &keyCycles, keyHit)
		if done {
			return
		}
	}

	for _, r := range reqs {
		now := time.Now()
		if r.expired(now) {
			e.expire(r)
			continue
		}
		e.m.queueWait.Observe(now.Sub(r.enqueued))

		var (
			ct  *fv.Ciphertext
			cct *ckks.Ciphertext
			rep core.Report
			err error
		)
		start := time.Now()
		switch r.op.Kind {
		case OpAdd:
			ct, rep, err = w.accel.Add(r.op.A, r.op.B)
		case OpMul:
			ct, rep, err = w.accel.Mul(r.op.A, r.op.B, rk)
		case OpRotate:
			ct, rep, err = w.accel.Rotate(r.op.A, gk)
		default:
			cct, rep, err = e.execCKKS(w, r.op, crk, cgk)
		}
		e.m.execTime.Observe(time.Since(start))
		if err != nil {
			if errors.Is(err, hwsim.ErrIntegrity) {
				// The co-processor caught corrupted state before any result
				// left the node. Self-heal at the op level: re-enqueue the
				// request — the operands are pristine client uploads, and a
				// retry restarts from them, usually on a different worker.
				e.m.integrityFaults.Add(1)
				w.integrityFails.Add(1)
				if r.retries < e.cfg.MaxIntegrityRetries {
					r.retries++
					if e.resubmit(r) {
						e.m.integrityRetries.Add(1)
						continue
					}
				}
				err = fmt.Errorf("%w (after %d integrity retries)", err, r.retries)
			}
			e.m.failed.Add(1)
			tc.failed.Add(1)
			e.finish(r, nil, err)
			continue
		}
		// The key stream is charged to the batch's first executed op — the
		// others find the key resident, which is the point of batching.
		rep.KeyLoadCycles = keyCycles
		keyCycles = 0
		w.ops.Add(1)
		w.simCycles.Add(uint64(rep.ComputeCycles))
		e.m.completed.Add(1)
		tc.completed.Add(1)
		tc.simCycles.Add(uint64(rep.ComputeCycles) + uint64(rep.KeyLoadCycles))
		e.finish(r, &Result{
			Ct:     ct,
			CCt:    cct,
			Report: rep,
			Worker: w.id,
			Batch:  len(b.reqs),
			KeyHit: keyHit,
			Wait:   now.Sub(r.enqueued),
		}, nil)
	}
}

// runMulStream tries to execute a Mul batch as one overlapped DMA/compute
// stream on w's co-processor (core.MulStream): operand uploads of op i+1
// hide behind op i's compute in a shadow operand bank. It returns the
// requests the caller still has to run and whether the batch is fully
// handled. On success everything is finished here; on any stream error the
// live requests are handed back to the sequential loop, which owns the
// integrity-retry machinery and restarts each op from its pristine operands.
func (e *Engine) runMulStream(w *worker, b *batch, tc *tenantCounters, rk *fv.RelinKey, keyCycles *hwsim.Cycles, keyHit bool) ([]*request, bool) {
	now := time.Now()
	live := make([]*request, 0, len(b.reqs))
	for _, r := range b.reqs {
		if r.expired(now) {
			e.expire(r)
			continue
		}
		live = append(live, r)
	}
	if len(live) < 2 {
		return live, false
	}
	xs := make([]*fv.Ciphertext, len(live))
	ys := make([]*fv.Ciphertext, len(live))
	for i, r := range live {
		xs[i], ys[i] = r.op.A, r.op.B
	}
	start := time.Now()
	cts, srep, err := w.accel.MulStream(xs, ys, rk)
	elapsed := time.Since(start)
	if err != nil {
		// Fall back — an integrity trip mid-stream is retried op-at-a-time
		// by the sequential path, with its usual resubmit budget.
		return live, false
	}
	e.m.pipelinedBatches.Add(1)
	e.m.pipelinedOps.Add(uint64(len(live)))
	e.m.pipelinedSaved.Add(uint64(srep.SavedCycles()))
	d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
	perExec := elapsed / time.Duration(len(live))
	for i, r := range live {
		e.m.queueWait.Observe(now.Sub(r.enqueued))
		e.m.execTime.Observe(perExec)
		rep := core.Report{
			ComputeCycles: srep.Steps[i].Compute,
			SendCycles:    d.FPGACycles(hwsim.Transfer{Bytes: srep.Steps[i].LoadBytes}),
			ReceiveCycles: d.FPGACycles(hwsim.Transfer{Bytes: srep.Steps[i].StoreBytes}),
		}
		// The key stream is charged to the stream's first op, exactly like
		// the sequential path charges the batch's first executed op.
		rep.KeyLoadCycles = *keyCycles
		*keyCycles = 0
		w.ops.Add(1)
		w.simCycles.Add(uint64(rep.ComputeCycles))
		e.m.completed.Add(1)
		tc.completed.Add(1)
		tc.simCycles.Add(uint64(rep.ComputeCycles) + uint64(rep.KeyLoadCycles))
		e.finish(r, &Result{
			Ct:          cts[i],
			Report:      rep,
			Worker:      w.id,
			Batch:       len(live),
			KeyHit:      keyHit,
			Wait:        now.Sub(r.enqueued),
			Pipelined:   true,
			SavedCycles: srep.SavedCycles(),
		}, nil)
	}
	return nil, true
}

// shouldQuarantine decides, after a batch, whether w has misbehaved enough
// (Config.QuarantineAfter integrity failures) to eject from the pool. The
// CAS on the live-worker count guarantees the last live worker is never
// ejected — a fully-faulted pool degrades to typed errors, it does not
// deadlock the batcher.
func (e *Engine) shouldQuarantine(w *worker) bool {
	if e.cfg.QuarantineAfter < 0 || w.quarantined.Load() {
		return false
	}
	if w.integrityFails.Load() < uint64(e.cfg.QuarantineAfter) {
		return false
	}
	for {
		live := e.liveWorkers.Load()
		if live <= 1 {
			return false
		}
		if e.liveWorkers.CompareAndSwap(live, live-1) {
			w.quarantined.Store(true)
			e.m.quarantined.Add(1)
			return true
		}
	}
}

// failBatch completes every request in b with err.
func (e *Engine) failBatch(b *batch, err error) {
	tc := e.tenant(b.key.tenant)
	for _, r := range b.reqs {
		e.m.failed.Add(uint64(1))
		tc.failed.Add(1)
		e.finish(r, nil, err)
	}
}
