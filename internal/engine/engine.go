// Package engine is the serving runtime between the network protocol
// (internal/cloud) and the simulated hardware (internal/core): the software
// half of the paper's Fig. 11 deployment, generalized from "two application
// Arm cores driving two co-processors" to a configurable pool of N workers,
// each owning one simulated co-processor.
//
// The flow is
//
//	Submit → bounded admission queue → batcher → worker pool → core.Accelerator
//
// with four properties the bare Accelerator does not provide:
//
//   - Backpressure. The admission queue is bounded; when it is full Submit
//     fails immediately with ErrOverloaded instead of blocking, so offered
//     load beyond capacity turns into rejections, not memory growth.
//   - Deadlines. Every request carries a deadline (from the caller's context
//     or the engine default); requests that expire while queued are dropped
//     before they ever reach a co-processor.
//   - Batching. Compatible operations — same tenant, same operation kind,
//     same Galois element — are grouped and dispatched to one worker as a
//     unit, so the evaluation key is streamed to the co-processor once per
//     batch rather than once per op (the paper's observation that
//     relinearization-key DMA dominates Mult motivates exactly this
//     amortization; see Sec. V-D).
//   - Observability. Atomic counters, latency histograms, and per-worker
//     simulated-cycle totals are available as a Stats snapshot and via
//     expvar.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/obs"
)

// Sentinel errors returned by Submit.
var (
	// ErrOverloaded means the admission queue was full. The caller should
	// back off and retry; the engine sheds load instead of queueing
	// unboundedly.
	ErrOverloaded = errors.New("engine: overloaded (admission queue full)")
	// ErrShutdown means Shutdown was called before the request was admitted.
	ErrShutdown = errors.New("engine: shutting down")
	// ErrDeadlineExceeded means the request expired before a co-processor
	// picked it up; it was dropped without executing.
	ErrDeadlineExceeded = errors.New("engine: deadline exceeded before execution")
	// ErrNoKey means the tenant has not registered the evaluation key the
	// operation needs (relinearization key for Mul, Galois key for Rotate).
	ErrNoKey = errors.New("engine: no evaluation key registered")
	// ErrNoiseBudget means the noise guardrail predicted the operation would
	// exhaust the ciphertext's noise budget: the result would decrypt to
	// garbage, so the engine refuses to compute it. Deterministic — retrying
	// elsewhere fails the same way.
	ErrNoiseBudget = errors.New("engine: predicted noise budget exhausted")
	// ErrCKKSUnavailable means a CKKS operation was submitted to an engine
	// built without Config.CKKSParams. Deterministic — the node does not
	// serve the scheme.
	ErrCKKSUnavailable = errors.New("engine: ckks serving not configured")
	// ErrQuotaExceeded means the tenant already has Config.TenantQuota
	// operations in flight on this node: admission is refused so one flooding
	// tenant sheds its own load instead of filling the shared queue. Like
	// ErrOverloaded it is transient — the caller should back off and retry.
	ErrQuotaExceeded = errors.New("engine: per-tenant quota exceeded")
)

// OpKind enumerates the homomorphic operations the engine serves.
type OpKind uint8

const (
	OpAdd OpKind = iota + 1
	OpMul
	OpRotate
	// CKKS approximate-arithmetic kinds (Config.CKKSParams must be set).
	// Add/Mul/Rotate run on the chain co-processor; the Plain kinds execute
	// on the application core's software evaluator (the co-processor has no
	// plaintext-operand instruction) with the engine encoding the slot
	// vector at the ciphertext's level.
	OpCKKSAdd
	OpCKKSMul
	OpCKKSRotate
	OpCKKSAddPlain
	OpCKKSMulPlain
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpRotate:
		return "rotate"
	case OpCKKSAdd:
		return "ckks_add"
	case OpCKKSMul:
		return "ckks_mul"
	case OpCKKSRotate:
		return "ckks_rotate"
	case OpCKKSAddPlain:
		return "ckks_add_plain"
	case OpCKKSMulPlain:
		return "ckks_mul_plain"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// isCKKS reports whether k is one of the approximate-arithmetic kinds.
func isCKKS(k OpKind) bool { return k >= OpCKKSAdd && k <= OpCKKSMulPlain }

// Op is one homomorphic operation on uploaded ciphertexts.
type Op struct {
	Kind   OpKind
	Tenant string // evaluation-key namespace; "" is the default tenant
	A, B   *fv.Ciphertext
	G      int // Galois element (OpRotate only)
	// CKKS operands: CA (and CB for the two-ciphertext kinds), the slot
	// rotation count R (OpCKKSRotate), and the plaintext slot vector Plain
	// (OpCKKSAddPlain/OpCKKSMulPlain).
	CA, CB *ckks.Ciphertext
	R      int
	Plain  []float64
	// BudgetHint is the caller-declared remaining noise budget (bits) of the
	// operands — the server cannot measure it without the secret key. Zero
	// means unknown; the noise guardrail (Config.NoiseGuard) only screens
	// hinted operations.
	BudgetHint float64
}

// Result is the outcome of a served operation.
type Result struct {
	Ct     *fv.Ciphertext
	CCt    *ckks.Ciphertext // result of a CKKS kind (Ct is nil)
	Report core.Report
	Worker int           // which worker / simulated co-processor served it
	Batch  int           // how many ops rode in the same batch
	KeyHit bool          // evaluation key was already resident on the worker
	Wait   time.Duration // time spent in the admission queue
	// Pipelined marks a request served by the overlapped DMA/compute stream
	// path (Config.Pipelined); SavedCycles is that stream's total hidden
	// transfer time, reported identically on every request that rode in it.
	Pipelined   bool
	SavedCycles hwsim.Cycles
}

// Config parameterizes New. Zero values select the documented defaults.
type Config struct {
	// Params is the FV parameter set every worker's accelerator is built
	// for. Required.
	Params *fv.Params
	// CKKSParams, when non-nil, additionally equips every worker with a CKKS
	// chain accelerator, enabling the OpCKKS* kinds. Engines built without
	// it refuse those kinds with ErrCKKSUnavailable.
	CKKSParams *ckks.Params
	// Variant selects the lift/scale architecture (default hwsim.VariantHPS).
	Variant hwsim.Variant
	// Workers is the number of pool workers, each owning one simulated
	// co-processor (default runtime.NumCPU()). The paper's platform is
	// Workers = 2 on a quad-core Arm.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects with ErrOverloaded.
	QueueDepth int
	// MaxBatch caps how many compatible ops are grouped into one dispatch
	// (default 8).
	MaxBatch int
	// BatchLinger is how long the batcher waits for more compatible ops
	// once the queue is empty before dispatching a partial batch
	// (default 0: dispatch immediately — latency first).
	BatchLinger time.Duration
	// Deadline is the default per-request deadline applied when the
	// caller's context has none (default 0: no deadline).
	Deadline time.Duration
	// KeyCacheSlots is the per-worker evaluation-key cache capacity in
	// keys (default 8). Keys beyond that are evicted LRU and must be
	// re-streamed (simulated DMA) on next use.
	KeyCacheSlots int
	// ExpvarName, when non-empty, publishes the Stats snapshot under this
	// expvar name. Publishing replaces any previous engine bound to the
	// name (tests building engine after engine all stay visible), and
	// Shutdown unbinds it.
	ExpvarName string

	// IntegrityChecks enables Freivalds-style fingerprint verification on
	// every worker's co-processor: corrupted state surfaces as an error
	// wrapping hwsim.ErrIntegrity instead of a wrong ciphertext, and the
	// engine retries/quarantines below. IntegritySeed parameterizes the
	// check weights (0 uses a fixed default).
	IntegrityChecks bool
	IntegritySeed   int64
	// FaultInjector, when non-nil, is attached to every worker's
	// co-processor — the chaos harness's hook. Production leaves it nil
	// (zero overhead).
	FaultInjector *faults.Injector
	// Registry, when non-nil, receives the hardware-level detection and
	// recovery counters (hw_integrity_*) alongside the engine's own.
	Registry *obs.Registry
	// MaxIntegrityRetries is how many times a request that failed an
	// integrity check is re-enqueued before its error is surfaced
	// (default 2). Retries restart from the pristine operand ciphertexts,
	// usually on a different worker.
	MaxIntegrityRetries int
	// QuarantineAfter ejects a worker from the pool after that many
	// integrity failures (default 3; negative disables). The last live
	// worker is never quarantined, so the engine degrades rather than
	// bricks.
	QuarantineAfter int
	// Pipelined enables the overlapped DMA/compute fast path: a Mul batch
	// with two or more live requests executes as one double-buffered stream
	// (core.MulStream) — operand uploads of op i+1 hide behind op i's
	// compute in a shadow bank of the co-processor memory file. Results are
	// bit-identical to the sequential path; only the simulated schedule
	// changes. Off by default so existing deployments keep byte-for-byte
	// identical accounting.
	Pipelined bool
	// NoiseGuard enables the noise-budget guardrail: operations whose
	// BudgetHint predicts a post-op budget below MinNoiseBudgetBits
	// (default 1.0) are rejected with ErrNoiseBudget at admission.
	NoiseGuard         bool
	MinNoiseBudgetBits float64

	// MaxPrograms bounds how many compiled programs may execute
	// concurrently (default Workers). A program is one admission unit:
	// admitting more programs than workers would interleave their
	// wavefronts without increasing throughput, so excess submissions fail
	// fast with ErrOverloaded like single ops do.
	MaxPrograms int

	// TenantQuota caps how many operations one tenant may have in flight on
	// this node (admitted but not yet completed; a program counts as one).
	// Beyond the cap Submit fails fast with ErrQuotaExceeded, so a flooding
	// tenant is shed before it can fill the shared admission queue.
	// 0 disables the cap.
	TenantQuota int
	// TenantWeights sets per-tenant weights for the batcher's weighted-fair
	// emission order (default weight 1 for any tenant not listed). A tenant
	// with weight 2 is charged half as much virtual time per op, so it gets
	// twice the dispatch share under contention. Purely an ordering policy:
	// total work and per-batch accounting are unchanged.
	TenantWeights map[string]int
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Params == nil {
		return cfg, errors.New("engine: Config.Params is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.KeyCacheSlots <= 0 {
		cfg.KeyCacheSlots = 8
	}
	if cfg.MaxIntegrityRetries <= 0 {
		cfg.MaxIntegrityRetries = 2
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.MinNoiseBudgetBits <= 0 {
		cfg.MinNoiseBudgetBits = 1.0
	}
	if cfg.MaxPrograms <= 0 {
		cfg.MaxPrograms = cfg.Workers
	}
	return cfg, nil
}

// request is one queued operation and its completion plumbing.
type request struct {
	op       Op
	ctx      context.Context
	deadline time.Time // zero = none
	enqueued time.Time
	retries  int // integrity-failure re-enqueues so far

	res  *Result
	err  error
	done chan struct{}
}

func (r *request) expired(now time.Time) bool {
	if !r.deadline.IsZero() && now.After(r.deadline) {
		return true
	}
	return r.ctx != nil && r.ctx.Err() != nil
}

// Engine is the serving runtime. Create with New, feed with Submit, stop
// with Shutdown.
type Engine struct {
	cfg     Config
	keys    *keyStore
	workers []*worker
	queue   chan *request
	batches chan *batch
	m       metrics

	// progTasks feeds per-node program work to the same worker pool as
	// batches; progSlots is the program admission gate (capacity
	// MaxPrograms); progWG tracks in-flight programs so Shutdown closes
	// progTasks only after the last one drains.
	progTasks chan *progTask
	progSlots chan struct{}
	progWG    sync.WaitGroup

	// noise is the guardrail's prediction model (nil unless NoiseGuard);
	// liveWorkers tracks pool members not yet quarantined.
	noise       *fv.NoiseModel
	liveWorkers atomic.Int32

	tmu     sync.RWMutex // guards tenants
	tenants map[string]*tenantCounters

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup // dispatcher + workers

	expvarBinding *obs.ExpvarBinding // non-nil iff cfg.ExpvarName was published

	// testExecHook, when set, runs at the start of every batch execution.
	// Tests use it to hold workers busy deterministically.
	testExecHook func(workerID int)
}

// New builds an engine: one core.Accelerator with a single simulated
// co-processor per worker, the admission queue, the batcher, and the worker
// goroutines. The engine is serving when New returns.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		keys:      newKeyStore(),
		queue:     make(chan *request, cfg.QueueDepth),
		batches:   make(chan *batch),
		progTasks: make(chan *progTask),
		progSlots: make(chan struct{}, cfg.MaxPrograms),
		tenants:   make(map[string]*tenantCounters),
	}
	if cfg.NoiseGuard {
		e.noise = fv.NewNoiseModel(cfg.Params)
	}
	for i := 0; i < cfg.Workers; i++ {
		accel, err := core.New(cfg.Params, cfg.Variant, 1)
		if err != nil {
			return nil, fmt.Errorf("engine: worker %d accelerator: %w", i, err)
		}
		if cfg.IntegrityChecks {
			// Per-worker seed offset so no two co-processors share check
			// weights: a systematic fault cannot hide behind a shared blind
			// spot.
			if err := accel.EnableIntegrity(cfg.IntegritySeed + int64(i)*1009 + 1); err != nil {
				return nil, fmt.Errorf("engine: worker %d integrity: %w", i, err)
			}
		}
		if cfg.FaultInjector != nil {
			accel.SetFaultInjector(cfg.FaultInjector)
		}
		if cfg.Registry != nil {
			accel.SetMetrics(cfg.Registry)
		}
		w := newWorker(i, accel, cfg.KeyCacheSlots, fv.NewEvaluator(cfg.Params))
		if cfg.CKKSParams != nil {
			ca, err := core.NewCKKS(cfg.CKKSParams, 1)
			if err != nil {
				return nil, fmt.Errorf("engine: worker %d ckks accelerator: %w", i, err)
			}
			if cfg.IntegrityChecks {
				// Offset into a disjoint seed range from the BFV co-processor
				// so the two schemes never share check weights either.
				if err := ca.EnableIntegrity(cfg.IntegritySeed + int64(i)*2027 + 501); err != nil {
					return nil, fmt.Errorf("engine: worker %d ckks integrity: %w", i, err)
				}
			}
			if cfg.FaultInjector != nil {
				ca.SetFaultInjector(cfg.FaultInjector)
			}
			if cfg.Registry != nil {
				ca.SetMetrics(cfg.Registry)
			}
			w.ckks = &ckksWorker{
				accel: ca,
				ev:    ckks.NewEvaluator(cfg.CKKSParams),
				enc:   ckks.NewEncoder(cfg.CKKSParams),
			}
		}
		e.workers = append(e.workers, w)
	}
	e.liveWorkers.Store(int32(len(e.workers)))
	e.wg.Add(1)
	go e.dispatch()
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *worker) {
			defer e.wg.Done()
			// Two work sources share the pool: op batches from the batcher
			// and per-node program tasks from the DAG scheduler. Each channel
			// is nil-ed out once closed; the worker exits when both have
			// drained (or it is quarantined).
			batches, progs := e.batches, e.progTasks
			for batches != nil || progs != nil {
				select {
				case b, ok := <-batches:
					if !ok {
						batches = nil
						continue
					}
					e.runBatch(w, b)
				case t, ok := <-progs:
					if !ok {
						progs = nil
						continue
					}
					e.runProgTask(w, t)
				}
				if e.shouldQuarantine(w) {
					return
				}
			}
		}(w)
	}
	if cfg.ExpvarName != "" {
		e.expvarBinding = obs.PublishExpvar(cfg.ExpvarName, func() any { return e.Stats() })
	}
	return e, nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.workers) }

// Tenants returns the namespaces with registered evaluation keys, sorted.
// Servers advertise this so a routing tier can see which tenants a node can
// serve Mul/Rotate for.
func (e *Engine) Tenants() []string { return e.keys.names() }

// tenant returns the per-tenant counter block, creating it on first use.
func (e *Engine) tenant(name string) *tenantCounters {
	e.tmu.RLock()
	c := e.tenants[name]
	e.tmu.RUnlock()
	if c != nil {
		return c
	}
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if c = e.tenants[name]; c == nil {
		c = &tenantCounters{}
		e.tenants[name] = c
	}
	return c
}

// SetRelinKey registers (or replaces) the tenant's relinearization key. The
// key stays in NTT form exactly as generated; workers model the DMA cost of
// streaming it on first use and keep it resident in their caches after.
func (e *Engine) SetRelinKey(tenant string, rk *fv.RelinKey) {
	e.keys.setRelin(tenant, rk)
}

// SetGaloisKey registers the tenant's key-switching key for one Galois
// element.
func (e *Engine) SetGaloisKey(tenant string, gk *fv.GaloisKey) {
	e.keys.setGalois(tenant, gk)
}

// SetCKKSRelinKey registers the tenant's CKKS relinearization key (all
// level bundles; workers stream and cache it like the FV keys).
func (e *Engine) SetCKKSRelinKey(tenant string, rk *ckks.RelinKey) {
	e.keys.setCKKSRelin(tenant, rk)
}

// SetCKKSGaloisKey registers the tenant's CKKS key-switching key for one
// Galois element.
func (e *Engine) SetCKKSGaloisKey(tenant string, gk *ckks.GaloisKey) {
	e.keys.setCKKSGalois(tenant, gk)
}

// ExportTenantKeys snapshots every evaluation key registered for the tenant
// — both schemes — for key-state migration to another node. Returns nil if
// the tenant has no keys here.
func (e *Engine) ExportTenantKeys(tenant string) *TenantKeySet {
	return e.keys.export(tenant)
}

// ImportTenantKeys registers a migrated key set under the tenant, replacing
// any keys of the same identity. Nil set is a no-op.
func (e *Engine) ImportTenantKeys(tenant string, ks *TenantKeySet) {
	e.keys.importSet(tenant, ks)
}

// Submit admits one operation and blocks until it completes, expires, or
// the context is canceled. A full queue fails fast with ErrOverloaded;
// Submit never blocks on admission.
func (e *Engine) Submit(ctx context.Context, op Op) (*Result, error) {
	if err := validate(op); err != nil {
		return nil, err
	}
	if isCKKS(op.Kind) && e.cfg.CKKSParams == nil {
		return nil, ErrCKKSUnavailable
	}
	if err := e.noiseGuard(op); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tc := e.tenant(op.Tenant)
	if err := e.admitTenant(tc); err != nil {
		return nil, err
	}
	now := time.Now()
	r := &request{op: op, ctx: ctx, enqueued: now, done: make(chan struct{})}
	if d, ok := ctx.Deadline(); ok {
		r.deadline = d
	}
	if e.cfg.Deadline > 0 {
		if d := now.Add(e.cfg.Deadline); r.deadline.IsZero() || d.Before(r.deadline) {
			r.deadline = d
		}
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		tc.inflight.Add(-1)
		return nil, ErrShutdown
	}
	select {
	case e.queue <- r:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		tc.inflight.Add(-1)
		e.m.rejected.Add(1)
		return nil, ErrOverloaded
	}
	e.m.submitted.Add(1)

	select {
	case <-r.done:
		return r.res, r.err
	case <-ctx.Done():
		// The request completes (or is dropped as expired) on its own; the
		// caller just stops waiting.
		return nil, ctx.Err()
	}
}

// Shutdown stops admission, lets the batcher flush everything already
// queued, waits for in-flight batches to finish, and returns. If ctx
// expires first it returns ctx.Err() with workers still draining in the
// background.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	// Release the expvar name so the next engine under the same name is
	// visible (stale bindings never clobber a newer publisher).
	e.expvarBinding.Unpublish()
	// Program admission is already refused (closed is set); close the task
	// channel once the last in-flight program drains so workers can exit.
	go func() {
		e.progWG.Wait()
		close(e.progTasks)
	}()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func validate(op Op) error {
	switch op.Kind {
	case OpAdd, OpMul:
		if op.A == nil || op.B == nil {
			return fmt.Errorf("engine: %v needs two operands", op.Kind)
		}
	case OpRotate:
		if op.A == nil {
			return fmt.Errorf("engine: rotate needs an operand")
		}
	case OpCKKSAdd, OpCKKSMul:
		if op.CA == nil || op.CB == nil {
			return fmt.Errorf("engine: %v needs two CKKS operands", op.Kind)
		}
	case OpCKKSRotate:
		if op.CA == nil {
			return fmt.Errorf("engine: %v needs a CKKS operand", op.Kind)
		}
	case OpCKKSAddPlain, OpCKKSMulPlain:
		if op.CA == nil || len(op.Plain) == 0 {
			return fmt.Errorf("engine: %v needs a CKKS operand and a plaintext vector", op.Kind)
		}
	default:
		return fmt.Errorf("engine: unknown op kind %d", op.Kind)
	}
	return nil
}

// noiseGuard screens a hinted operation through the fv noise model: if the
// predicted post-op budget is below the floor, the result would decrypt to
// garbage, and the engine refuses with ErrNoiseBudget instead of computing
// it. Unhinted operations (BudgetHint 0) pass — the server cannot measure
// budget without the secret key.
func (e *Engine) noiseGuard(op Op) error {
	if e.noise == nil || op.BudgetHint <= 0 {
		return nil
	}
	var predicted float64
	switch op.Kind {
	case OpAdd:
		predicted = e.noise.AfterAdd(op.BudgetHint, op.BudgetHint)
	case OpMul:
		predicted = e.noise.AfterMul(op.BudgetHint, op.BudgetHint)
	case OpRotate:
		predicted = e.noise.AfterGalois(op.BudgetHint)
	default:
		return nil
	}
	if predicted < e.cfg.MinNoiseBudgetBits {
		e.m.noiseRejected.Add(1)
		return fmt.Errorf("%w: %v predicted to leave %.1f bits (floor %.1f)",
			ErrNoiseBudget, op.Kind, predicted, e.cfg.MinNoiseBudgetBits)
	}
	return nil
}

// resubmit re-enqueues a request after a recoverable integrity failure,
// without blocking: the batcher may itself be blocked handing work to the
// pool, and a worker waiting on the queue would deadlock. A full or closed
// queue fails the retry (the caller surfaces the original error).
func (e *Engine) resubmit(r *request) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	select {
	case e.queue <- r:
		return true
	default:
		return false
	}
}

// admitTenant charges one in-flight unit against the tenant's quota,
// refusing with ErrQuotaExceeded past the cap. The caller must release the
// unit (inflight.Add(-1)) exactly once on every exit path — for queued
// operations that release point is finish.
func (e *Engine) admitTenant(tc *tenantCounters) error {
	n := tc.inflight.Add(1)
	if q := e.cfg.TenantQuota; q > 0 && n > int64(q) {
		tc.inflight.Add(-1)
		tc.quotaRejected.Add(1)
		e.m.quotaRejected.Add(1)
		return ErrQuotaExceeded
	}
	return nil
}

// finish completes a request exactly once, releasing its tenant-quota unit.
func (e *Engine) finish(r *request, res *Result, err error) {
	e.tenant(r.op.Tenant).inflight.Add(-1)
	r.res, r.err = res, err
	close(r.done)
}

// expire drops a request that ran out of time before execution.
func (e *Engine) expire(r *request) {
	e.m.expired.Add(1)
	e.finish(r, nil, ErrDeadlineExceeded)
}
