package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitTenantInflight polls until the tenant's live admission count reaches
// want, failing the test after a generous deadline.
func waitTenantInflight(t *testing.T, e *Engine, tenant string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := e.Stats().PerTenant[tenant]; ok && st.Inflight >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("tenant %q never reached %d in-flight operations", tenant, want)
}

// TestTenantQuotaRejectsExcess: with TenantQuota = 2 and the worker frozen,
// a third concurrent submission from the same tenant must be refused with
// ErrQuotaExceeded immediately (not queued), the refusal must show up in
// both the global and per-tenant counters, and the quota unit must be
// released once the in-flight work completes so the tenant can submit again.
func TestTenantQuotaRejectsExcess(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "quota-tenant", 11)
	e := newEngine(t, params, Config{Workers: 1, MaxBatch: 1, QueueDepth: 16, TenantQuota: 2})
	e.SetRelinKey(tn.name, tn.rk)

	gate := make(chan struct{})
	var release sync.Once
	defer release.Do(func() { close(gate) })
	e.testExecHook = func(int) { <-gate }

	a := tn.encrypt(params, 9, 301)
	b := tn.encrypt(params, 13, 302)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b})
		}(i)
	}
	waitTenantInflight(t, e, tn.name, 2)

	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third submission over quota returned %v, want ErrQuotaExceeded", err)
	}
	st := e.Stats()
	if st.QuotaRejected != 1 {
		t.Fatalf("global QuotaRejected = %d, want 1", st.QuotaRejected)
	}
	if ts := st.PerTenant[tn.name]; ts.QuotaRejected != 1 {
		t.Fatalf("tenant QuotaRejected = %d, want 1", ts.QuotaRejected)
	}

	release.Do(func() { close(gate) })
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted submission %d failed: %v", i, err)
		}
	}

	// The quota units were released on completion: a fresh submission fits.
	res, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b})
	if err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
	if got := tn.decrypt(params, res.Ct); got != 9*13%params.Cfg.T {
		t.Fatalf("decrypt = %d, want %d", got, 9*13%params.Cfg.T)
	}
	if ts := e.Stats().PerTenant[tn.name]; ts.Inflight != 0 {
		t.Fatalf("tenant Inflight = %d after drain, want 0", ts.Inflight)
	}
}

// TestWFQLightTenantJumpsFlood exercises the weighted-fair emission order:
// a flooding tenant's virtual clock advances with every emitted batch, so a
// light tenant's earlier-queued single op is emitted ahead of the flooder's
// NEXT batch even though the flooder's partial group arrived first. Under
// plain FIFO the light op would sit behind the whole flood.
//
// Schedule (Workers = 1, MaxBatch = 4, long linger so nothing flushes on
// its own):
//
//  1. flood wave 1 (4 ops) fills a batch -> emitted, worker frozen on it;
//     the flooder's virtual time advances 0 -> 4
//  2. one more flood op queues (pending, would restart at vtime 4)
//  3. one light op queues (pending, vtime 0)
//  4. three more flood ops complete the flooder's second batch -> emission
//     point: the light group (vtime 0) must jump ahead of flood wave 2
func TestWFQLightTenantJumpsFlood(t *testing.T) {
	params := testParams(t)
	flood := newTenant(t, params, "flood", 21)
	light := newTenant(t, params, "light", 22)
	e := newEngine(t, params, Config{
		Workers:       1,
		MaxBatch:      4,
		QueueDepth:    32,
		BatchLinger:   time.Minute, // partial groups only move at emission points
		TenantWeights: map[string]int{"flood": 1, "light": 1},
	})
	e.SetRelinKey(flood.name, flood.rk)
	e.SetRelinKey(light.name, light.rk)

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var release sync.Once
	defer release.Do(func() { close(gate) })
	e.testExecHook = func(int) {
		entered <- struct{}{}
		<-gate
		// Released: pace later batches so the previous batch's submitters
		// get to record their completions first.
		time.Sleep(50 * time.Millisecond)
	}

	var (
		wg             sync.WaitGroup
		floodCompleted atomic.Int64
		lightSaw       atomic.Int64
	)
	submitFlood := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := flood.encrypt(params, 3, 401)
			b := flood.encrypt(params, 5, 402)
			if _, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: flood.name, A: a, B: b}); err != nil {
				t.Errorf("flood submit: %v", err)
				return
			}
			floodCompleted.Add(1)
		}()
	}

	// Wave 1: a full flood batch grabs the (frozen) worker.
	for i := 0; i < 4; i++ {
		submitFlood()
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flood wave 1 never reached the worker")
	}

	// One straggler flood op, then the light op, both left pending.
	submitFlood()
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := light.encrypt(params, 7, 403)
		b := light.encrypt(params, 2, 404)
		res, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: light.name, A: a, B: b})
		if err != nil {
			t.Errorf("light submit: %v", err)
			return
		}
		lightSaw.Store(floodCompleted.Load())
		if got := light.decrypt(params, res.Ct); got != 14 {
			t.Errorf("light decrypt = %d, want 14", got)
		}
	}()
	time.Sleep(20 * time.Millisecond)

	// Three more flood ops complete the flooder's second batch and force
	// the emission point that must favor the light tenant.
	for i := 0; i < 3; i++ {
		submitFlood()
	}
	time.Sleep(20 * time.Millisecond)

	release.Do(func() { close(gate) })
	wg.Wait()

	// The light op must have completed before any wave-2 flood op: at most
	// the four wave-1 completions were visible to it.
	if saw := lightSaw.Load(); saw > 4 {
		t.Fatalf("light tenant completed after %d flood ops — it waited behind the flood (WFQ should emit it after wave 1, i.e. at most 4)", saw)
	}
	if got := floodCompleted.Load(); got != 8 {
		t.Fatalf("flood completed %d ops, want 8", got)
	}
}

// TestKeyCacheEvictionMetricsPerTenant: with a single one-slot worker cache,
// alternating tenants evict each other's resident relinearization key on
// every switch; the evictions must be attributed to the VICTIM tenant in
// Stats().PerTenant and mirrored to the obs registry as
// "keycache_evictions:<tenant>" counters.
func TestKeyCacheEvictionMetricsPerTenant(t *testing.T) {
	params := testParams(t)
	ta := newTenant(t, params, "alpha", 31)
	tb := newTenant(t, params, "beta", 32)
	reg := obs.NewRegistry()
	e := newEngine(t, params, Config{Workers: 1, MaxBatch: 1, KeyCacheSlots: 1, Registry: reg})
	e.SetRelinKey(ta.name, ta.rk)
	e.SetRelinKey(tb.name, tb.rk)

	mul := func(tn *tenant, v1, v2, seed uint64) {
		t.Helper()
		a := tn.encrypt(params, v1, seed)
		b := tn.encrypt(params, v2, seed+1)
		res, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b})
		if err != nil {
			t.Fatalf("mul for %q: %v", tn.name, err)
		}
		if got, want := tn.decrypt(params, res.Ct), v1*v2%params.Cfg.T; got != want {
			t.Fatalf("decrypt for %q = %d, want %d", tn.name, got, want)
		}
	}

	mul(ta, 3, 4, 501)  // loads alpha's key (cold, no eviction)
	mul(tb, 5, 6, 503)  // evicts alpha
	mul(ta, 7, 8, 505)  // evicts beta
	mul(tb, 9, 10, 507) // evicts alpha again

	st := e.Stats()
	if st.KeyEvictions != 3 {
		t.Fatalf("global KeyEvictions = %d, want 3", st.KeyEvictions)
	}
	if got := st.PerTenant[ta.name].KeyEvictions; got != 2 {
		t.Fatalf("alpha KeyEvictions = %d, want 2 (victim attribution)", got)
	}
	if got := st.PerTenant[tb.name].KeyEvictions; got != 1 {
		t.Fatalf("beta KeyEvictions = %d, want 1 (victim attribution)", got)
	}
	if got := reg.Counter("keycache_evictions:" + ta.name).Value(); got != 2 {
		t.Fatalf("registry keycache_evictions:alpha = %d, want 2", got)
	}
	if got := reg.Counter("keycache_evictions:" + tb.name).Value(); got != 1 {
		t.Fatalf("registry keycache_evictions:beta = %d, want 1", got)
	}
}
