package engine

import (
	"sync/atomic"

	"repro/internal/hwsim"
	"repro/internal/obs"
	"repro/internal/poly"
)

// HistogramStats re-exports the obs snapshot type: the engine's latency
// histograms are obs.Histograms, so every layer reports in the same shape.
type HistogramStats = obs.HistogramStats

// metrics is the engine's counter set. All fields are atomics; Stats takes
// a consistent-enough snapshot without stopping the world.
type metrics struct {
	submitted  atomic.Uint64
	rejected   atomic.Uint64
	expired    atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	keyLoads   atomic.Uint64
	keyHits    atomic.Uint64
	keyEvicted atomic.Uint64

	// Robustness counters: integrity failures caught by the co-processor
	// checks, the subset recovered by op-level retry, workers ejected for
	// repeated failures, and operations refused by the noise guardrail.
	integrityFaults  atomic.Uint64
	integrityRetries atomic.Uint64
	quarantined      atomic.Uint64
	noiseRejected    atomic.Uint64
	quotaRejected    atomic.Uint64

	// Program-mode counters: programs completed and the DAG nodes they
	// executed (a program is one admission unit but many ops).
	programs     atomic.Uint64
	programNodes atomic.Uint64

	// Pipelined-stream counters (Config.Pipelined): Mul batches executed as
	// one overlapped DMA/compute stream, the ops they carried, and the
	// simulated cycles the overlap hid versus back-to-back execution.
	pipelinedBatches atomic.Uint64
	pipelinedOps     atomic.Uint64
	pipelinedSaved   atomic.Uint64

	// queueWait is admission-to-dispatch, batchAssembly is the age of a
	// batch when it is handed to a worker (first admit to emit), execTime is
	// per-op worker service time — the three legs of a request's life.
	queueWait     obs.Histogram
	batchAssembly obs.Histogram
	execTime      obs.Histogram
}

// tenantCounters accumulates per-tenant accounting; all atomics, updated by
// workers and snapshotted by Stats without locks. inflight is the tenant's
// live admission count — the value the TenantQuota cap compares against.
type tenantCounters struct {
	completed     atomic.Uint64
	failed        atomic.Uint64
	keyLoads      atomic.Uint64
	keyEvictions  atomic.Uint64
	simCycles     atomic.Uint64
	programs      atomic.Uint64
	quotaRejected atomic.Uint64
	inflight      atomic.Int64
}

// TenantStats is the per-tenant slice of a Stats snapshot: how much load a
// key namespace has put on this node. The cluster router reads this to see
// placement and per-tenant load — SimSeconds is the simulated co-processor
// time the tenant consumed here.
type TenantStats struct {
	Completed  uint64
	Failed     uint64
	KeyLoads   uint64
	SimCycles  uint64
	SimSeconds float64
	// Programs counts whole compiled programs this tenant completed here.
	Programs uint64
	// KeyEvictions counts this tenant's keys evicted from worker caches by
	// other key loads — the cache-pressure cost migration planning watches.
	KeyEvictions uint64
	// QuotaRejected counts admissions refused by the per-tenant quota;
	// Inflight is the tenant's current live admission count.
	QuotaRejected uint64
	Inflight      int64
}

// WorkerStats is the per-worker accounting slice of a Stats snapshot.
type WorkerStats struct {
	Ops       uint64
	KeyLoads  uint64
	SimCycles uint64
	// SimSeconds is the simulated co-processor busy time (compute plus
	// evaluation-key streaming) — the denominator of the paper's
	// throughput numbers.
	SimSeconds float64
	// ResidentKeys is the current evaluation-key cache occupancy.
	ResidentKeys int
	// IntegrityFaults counts ops on this worker that tripped an integrity
	// check; Quarantined is set once the worker was ejected for them.
	IntegrityFaults uint64
	Quarantined     bool
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Workers    int
	QueueDepth int
	QueueLen   int

	Submitted uint64
	Rejected  uint64
	Expired   uint64
	Completed uint64
	Failed    uint64

	Batches    uint64
	BatchedOps uint64
	AvgBatch   float64

	KeyLoads     uint64
	KeyHits      uint64
	KeyEvictions uint64

	// IntegrityFaults/IntegrityRetries/Quarantined/NoiseRejected are the
	// robustness ledger: detections, op-level recoveries, ejected workers,
	// and guardrail refusals. LiveWorkers is Workers minus quarantined.
	IntegrityFaults  uint64
	IntegrityRetries uint64
	Quarantined      uint64
	NoiseRejected    uint64
	QuotaRejected    uint64
	LiveWorkers      int

	// Programs counts completed compiled programs; ProgramNodes the DAG
	// nodes executed for them (not double-counted in Completed, which stays
	// op-at-a-time).
	Programs     uint64
	ProgramNodes uint64

	// PipelinedBatches/PipelinedOps count Mul batches (and the requests in
	// them) that ran as overlapped DMA/compute streams;
	// PipelinedSavedCycles is the total simulated cycles the overlap hid —
	// Σ min(next operand DMA, current compute) over every stream.
	PipelinedBatches     uint64
	PipelinedOps         uint64
	PipelinedSavedCycles uint64

	QueueWait     HistogramStats
	BatchAssembly HistogramStats
	ExecTime      HistogramStats

	PerWorker []WorkerStats

	// PerTenant maps each key namespace that has sent traffic to its share
	// of the node's load.
	PerTenant map[string]TenantStats `json:",omitempty"`

	// Pool is the shared goroutine pool's accounting, present when the
	// parameter set's pool has metrics enabled (heserver enables it).
	Pool *poly.PoolStats `json:",omitempty"`
}

// keyEvicted records one evaluation-key eviction, attributed to the tenant
// whose key was displaced: the engine-global counter, the victim tenant's
// counter, and (when a Registry is wired) the per-tenant obs counter the
// migration tooling watches for cache pressure.
func (e *Engine) keyEvicted(tenant string) {
	e.m.keyEvicted.Add(1)
	e.tenant(tenant).keyEvictions.Add(1)
	if e.cfg.Registry != nil {
		e.cfg.Registry.Counter("keycache_evictions:" + tenant).Add(1)
	}
}

// Stats snapshots the engine's observability counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:              len(e.workers),
		QueueDepth:           e.cfg.QueueDepth,
		QueueLen:             len(e.queue),
		Submitted:            e.m.submitted.Load(),
		Rejected:             e.m.rejected.Load(),
		Expired:              e.m.expired.Load(),
		Completed:            e.m.completed.Load(),
		Failed:               e.m.failed.Load(),
		Batches:              e.m.batches.Load(),
		BatchedOps:           e.m.batchedOps.Load(),
		KeyLoads:             e.m.keyLoads.Load(),
		KeyHits:              e.m.keyHits.Load(),
		KeyEvictions:         e.m.keyEvicted.Load(),
		IntegrityFaults:      e.m.integrityFaults.Load(),
		IntegrityRetries:     e.m.integrityRetries.Load(),
		Quarantined:          e.m.quarantined.Load(),
		NoiseRejected:        e.m.noiseRejected.Load(),
		QuotaRejected:        e.m.quotaRejected.Load(),
		LiveWorkers:          int(e.liveWorkers.Load()),
		Programs:             e.m.programs.Load(),
		ProgramNodes:         e.m.programNodes.Load(),
		PipelinedBatches:     e.m.pipelinedBatches.Load(),
		PipelinedOps:         e.m.pipelinedOps.Load(),
		PipelinedSavedCycles: e.m.pipelinedSaved.Load(),
		QueueWait:            e.m.queueWait.Snapshot(),
		BatchAssembly:        e.m.batchAssembly.Snapshot(),
		ExecTime:             e.m.execTime.Snapshot(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.BatchedOps) / float64(s.Batches)
	}
	for _, w := range e.workers {
		cyc := w.simCycles.Load()
		s.PerWorker = append(s.PerWorker, WorkerStats{
			Ops:             w.ops.Load(),
			KeyLoads:        w.keyLoads.Load(),
			SimCycles:       cyc,
			SimSeconds:      hwsim.Cycles(cyc).Seconds(),
			ResidentKeys:    int(w.resident.Load()),
			IntegrityFaults: w.integrityFails.Load(),
			Quarantined:     w.quarantined.Load(),
		})
	}
	e.tmu.RLock()
	if len(e.tenants) > 0 {
		s.PerTenant = make(map[string]TenantStats, len(e.tenants))
		for name, tc := range e.tenants {
			cyc := tc.simCycles.Load()
			s.PerTenant[name] = TenantStats{
				Completed:     tc.completed.Load(),
				Failed:        tc.failed.Load(),
				KeyLoads:      tc.keyLoads.Load(),
				SimCycles:     cyc,
				SimSeconds:    hwsim.Cycles(cyc).Seconds(),
				Programs:      tc.programs.Load(),
				KeyEvictions:  tc.keyEvictions.Load(),
				QuotaRejected: tc.quotaRejected.Load(),
				Inflight:      tc.inflight.Load(),
			}
		}
	}
	e.tmu.RUnlock()
	if pool := e.cfg.Params.Pool; pool.MetricsEnabled() {
		ps := pool.Stats()
		s.Pool = &ps
	}
	return s
}
