package engine

import (
	"expvar"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hwsim"
)

// histogram is a lock-free log2-bucketed latency histogram: bucket i counts
// observations with ns in [2^(i-1), 2^i). 48 buckets cover ~3 days.
type histogram struct {
	buckets [48]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistogramStats is a snapshot summary of one histogram. Quantiles are
// approximate (geometric midpoint of the owning log2 bucket).
type HistogramStats struct {
	Count      uint64
	MeanMicros float64
	P50Micros  float64
	P99Micros  float64
	MaxMicros  float64
}

func (h *histogram) snapshot() HistogramStats {
	var s HistogramStats
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.MeanMicros = float64(h.sumNS.Load()) / float64(s.Count) / 1e3
	s.MaxMicros = float64(h.maxNS.Load()) / 1e3
	var counts [48]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total)))
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target && c > 0 {
				// Geometric midpoint of [2^(i-1), 2^i) ns.
				lo := math.Exp2(float64(i - 1))
				return lo * math.Sqrt2 / 1e3
			}
		}
		return s.MaxMicros
	}
	s.P50Micros = quantile(0.50)
	s.P99Micros = quantile(0.99)
	return s
}

// metrics is the engine's counter set. All fields are atomics; Stats takes
// a consistent-enough snapshot without stopping the world.
type metrics struct {
	submitted  atomic.Uint64
	rejected   atomic.Uint64
	expired    atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	keyLoads   atomic.Uint64
	keyHits    atomic.Uint64
	keyEvicted atomic.Uint64
	queueWait  histogram
	execTime   histogram
}

// WorkerStats is the per-worker accounting slice of a Stats snapshot.
type WorkerStats struct {
	Ops       uint64
	KeyLoads  uint64
	SimCycles uint64
	// SimSeconds is the simulated co-processor busy time (compute plus
	// evaluation-key streaming) — the denominator of the paper's
	// throughput numbers.
	SimSeconds float64
	// ResidentKeys is the current evaluation-key cache occupancy.
	ResidentKeys int
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Workers    int
	QueueDepth int
	QueueLen   int

	Submitted uint64
	Rejected  uint64
	Expired   uint64
	Completed uint64
	Failed    uint64

	Batches    uint64
	BatchedOps uint64
	AvgBatch   float64

	KeyLoads     uint64
	KeyHits      uint64
	KeyEvictions uint64

	QueueWait HistogramStats
	ExecTime  HistogramStats

	PerWorker []WorkerStats
}

// Stats snapshots the engine's observability counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:      len(e.workers),
		QueueDepth:   e.cfg.QueueDepth,
		QueueLen:     len(e.queue),
		Submitted:    e.m.submitted.Load(),
		Rejected:     e.m.rejected.Load(),
		Expired:      e.m.expired.Load(),
		Completed:    e.m.completed.Load(),
		Failed:       e.m.failed.Load(),
		Batches:      e.m.batches.Load(),
		BatchedOps:   e.m.batchedOps.Load(),
		KeyLoads:     e.m.keyLoads.Load(),
		KeyHits:      e.m.keyHits.Load(),
		KeyEvictions: e.m.keyEvicted.Load(),
		QueueWait:    e.m.queueWait.snapshot(),
		ExecTime:     e.m.execTime.snapshot(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.BatchedOps) / float64(s.Batches)
	}
	for _, w := range e.workers {
		cyc := w.simCycles.Load()
		s.PerWorker = append(s.PerWorker, WorkerStats{
			Ops:          w.ops.Load(),
			KeyLoads:     w.keyLoads.Load(),
			SimCycles:    cyc,
			SimSeconds:   hwsim.Cycles(cyc).Seconds(),
			ResidentKeys: int(w.resident.Load()),
		})
	}
	return s
}

// expvarMu guards the "is this name taken" check; expvar itself panics on a
// duplicate Publish, which would be a rough edge for tests that build many
// engines.
var expvarMu sync.Mutex

func publishExpvar(name string, e *Engine) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return e.Stats() }))
}
