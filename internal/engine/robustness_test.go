package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/obs"
)

// TestEngineIntegrityRetryRecovers arms one storage fault: the first
// execution attempt trips the co-processor's fingerprint check, the engine
// re-enqueues the request from its pristine operands, and the retry
// succeeds — the client sees a correct result and never the fault.
func TestEngineIntegrityRetryRecovers(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	inj := faults.New(21)
	inj.Arm(faults.Spec{Class: faults.ClassBRAM, After: 0})
	reg := obs.NewRegistry()
	e := newEngine(t, params, Config{
		Workers:         2,
		IntegrityChecks: true,
		FaultInjector:   inj,
		Registry:        reg,
	})
	e.SetRelinKey(tn.name, tn.rk)

	a := tn.encrypt(params, 6, 301)
	b := tn.encrypt(params, 7, 302)
	res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
	if err != nil {
		t.Fatalf("op not recovered: %v", err)
	}
	if got := tn.decrypt(params, res.Ct); got != 42 {
		t.Fatalf("decrypted %d, want 42", got)
	}
	s := e.Stats()
	if s.IntegrityFaults != 1 || s.IntegrityRetries != 1 {
		t.Fatalf("faults=%d retries=%d, want 1/1", s.IntegrityFaults, s.IntegrityRetries)
	}
	if inj.Stats().TotalFired != 1 {
		t.Fatalf("injector fired %d faults, want 1", inj.Stats().TotalFired)
	}
	if reg.Counter("hw_integrity_storage_detected").Value() == 0 {
		t.Fatal("hardware detection counter not incremented")
	}
	// The result must match a clean sequential accelerator bit for bit.
	ref, err := core.New(params, hwsim.VariantHPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Mul(a, b, tn.rk)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ct.Equal(want) {
		t.Fatal("recovered result differs from clean accelerator")
	}
}

// TestEngineExhaustedRetriesSurfaceTypedError arms more faults than the
// retry budget: the op must fail with an error wrapping hwsim.ErrIntegrity —
// a typed refusal, never a silently wrong ciphertext.
func TestEngineExhaustedRetriesSurfaceTypedError(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	inj := faults.New(22)
	// Enough single-shot faults that the initial attempt and every retry all
	// hit a corrupted operand read.
	specs := make([]faults.Spec, 16)
	for i := range specs {
		specs[i] = faults.Spec{Class: faults.ClassBRAM, After: uint64(i)}
	}
	inj.Arm(specs...)
	e := newEngine(t, params, Config{
		Workers:             1,
		IntegrityChecks:     true,
		FaultInjector:       inj,
		MaxIntegrityRetries: 2,
		QuarantineAfter:     -1, // isolate the retry path from quarantine
	})
	e.SetRelinKey(tn.name, tn.rk)

	a := tn.encrypt(params, 3, 311)
	b := tn.encrypt(params, 4, 312)
	_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
	if !errors.Is(err, hwsim.ErrIntegrity) {
		t.Fatalf("want error wrapping hwsim.ErrIntegrity, got %v", err)
	}
	s := e.Stats()
	if s.IntegrityRetries != 2 || s.Failed != 1 {
		t.Fatalf("retries=%d failed=%d, want 2/1", s.IntegrityRetries, s.Failed)
	}
}

// TestEngineQuarantineNeverEjectsLastWorker drives repeated integrity
// failures through a two-worker pool with a one-strike quarantine policy:
// exactly one worker is ejected (the CAS floor keeps the last one alive),
// and once the armed faults are spent the surviving worker still serves
// correct results.
func TestEngineQuarantineNeverEjectsLastWorker(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	inj := faults.New(23)
	specs := make([]faults.Spec, 24)
	for i := range specs {
		specs[i] = faults.Spec{Class: faults.ClassBRAM, After: uint64(i)}
	}
	inj.Arm(specs...)
	e := newEngine(t, params, Config{
		Workers:             2,
		IntegrityChecks:     true,
		FaultInjector:       inj,
		MaxIntegrityRetries: 1,
		QuarantineAfter:     1,
	})
	e.SetRelinKey(tn.name, tn.rk)

	a := tn.encrypt(params, 5, 321)
	b := tn.encrypt(params, 8, 322)
	// Burn through the armed faults. Ops fail with typed errors while faults
	// remain; both workers accumulate strikes, but only one may be ejected.
	for inj.Stats().Pending > 0 {
		if _, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b}); err != nil &&
			!errors.Is(err, hwsim.ErrIntegrity) {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b})
	if err != nil {
		t.Fatalf("surviving worker cannot serve: %v", err)
	}
	if got := tn.decrypt(params, res.Ct); got != 40 {
		t.Fatalf("decrypted %d, want 40", got)
	}
	s := e.Stats()
	if s.Quarantined != 1 {
		t.Fatalf("quarantined %d workers, want exactly 1", s.Quarantined)
	}
	if s.LiveWorkers != 1 {
		t.Fatalf("live workers %d, want 1", s.LiveWorkers)
	}
	ejected := 0
	for _, w := range s.PerWorker {
		if w.Quarantined {
			ejected++
		}
	}
	if ejected != 1 {
		t.Fatalf("per-worker snapshot shows %d ejected, want 1", ejected)
	}
}

// TestEngineNoiseGuard pins the guardrail contract: hinted operations whose
// predicted post-op budget falls below the floor are refused at admission
// with ErrNoiseBudget (deterministic, non-retryable), unhinted and healthy
// operations pass untouched.
func TestEngineNoiseGuard(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 1, NoiseGuard: true})
	e.SetRelinKey(tn.name, tn.rk)

	a := tn.encrypt(params, 2, 331)
	b := tn.encrypt(params, 9, 332)

	// A Mul on operands hinted at ~3 bits of budget predicts exhaustion.
	_, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b, BudgetHint: 3})
	if !errors.Is(err, ErrNoiseBudget) {
		t.Fatalf("want ErrNoiseBudget, got %v", err)
	}
	// An Add hinted just above the floor is refused too (predicts floor-1).
	_, err = e.Submit(context.Background(), Op{Kind: OpAdd, A: a, B: b, BudgetHint: 1.5})
	if !errors.Is(err, ErrNoiseBudget) {
		t.Fatalf("shallow add: want ErrNoiseBudget, got %v", err)
	}
	if s := e.Stats(); s.NoiseRejected != 2 {
		t.Fatalf("noise rejections = %d, want 2", s.NoiseRejected)
	}

	// A fresh-sized hint passes and computes correctly.
	fresh := fv.NewNoiseModel(params).Fresh()
	res, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b, BudgetHint: fresh})
	if err != nil {
		t.Fatalf("healthy hinted mul refused: %v", err)
	}
	if got := tn.decrypt(params, res.Ct); got != 18 {
		t.Fatalf("decrypted %d, want 18", got)
	}
	// An unhinted op is never screened — the server cannot measure budget.
	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, A: a, B: b}); err != nil {
		t.Fatalf("unhinted mul refused: %v", err)
	}
}
