package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/program"
)

// This file is the dependence-aware DAG scheduler: a compiled
// internal/program executes as ONE admission unit instead of a stream of
// independent Submit calls. That buys three things op-at-a-time serving
// cannot have:
//
//   - One round trip. The client ships the whole circuit; intermediates
//     never cross the wire (the paper's Fig. 11 deployment keeps them in
//     co-processor memory for exactly this reason).
//   - One key load per evaluation key. The relinearization key alone is
//     ~1.2 MB for the paper set (Sec. V-D); op-at-a-time serving re-streams
//     it whenever the LRU slot was lost. A program charges each key's DMA
//     exactly once up front.
//   - Wavefront parallelism. Analyze levelizes the DAG; every node in a
//     wavefront has its operands ready, so the scheduler fans the wavefront
//     across the worker pool and synchronizes only at level boundaries.
//
// Makespan accounting is deterministic on purpose: real goroutine
// scheduling decides which worker computes which node, but the reported
// MakespanCycles come from a virtual round-robin placement of the (data-
// independent) per-node cycle counts onto Config.Workers lanes. Identical
// submissions therefore report identical makespans, which is what lets the
// benchmark-regression gate pin program-mode wins without calibration.

// ProgramOp is one compiled program submission.
type ProgramOp struct {
	Tenant string
	Prog   *program.Program
	Inputs []*fv.Ciphertext
	// BudgetHint is the caller-declared noise budget (bits) of the freshest
	// input; zero means unknown. With Config.NoiseGuard the whole program is
	// pre-screened through the fv noise model before any cycle is spent.
	BudgetHint float64
}

// ProgramResult is the outcome of a scheduled program execution.
type ProgramResult struct {
	Outputs []*fv.Ciphertext
	Nodes   int // DAG nodes executed

	// MakespanCycles is the deterministic simulated completion time of the
	// levelized schedule on Config.Workers lanes, including the key
	// prologue; SerialCycles is what the same nodes would cost end to end on
	// one lane (the op-at-a-time floor). Their ratio is the parallel
	// speedup the DAG exposed.
	MakespanCycles hwsim.Cycles
	SerialCycles   hwsim.Cycles
	KeyLoadCycles  hwsim.Cycles

	KeyLoads int // evaluation keys streamed (once each, the point of program mode)
	Workers  int // scheduling lanes used for the makespan model
	Retries  int // integrity-failure node retries that recovered
	Wait     time.Duration
}

// progTask is one DAG node handed to the worker pool. Operands are resolved
// by the scheduler (they live in earlier wavefronts), so a worker needs no
// program context — it executes the node and reports back on res, which is
// buffered to the wavefront width and never blocks.
type progTask struct {
	op    program.OpCode
	a, b  *fv.Ciphertext
	plain *fv.Plaintext
	g     int
	rk    *fv.RelinKey
	gk    *fv.GaloisKey

	def int // value index this node defines
	res chan progNodeResult
}

type progNodeResult struct {
	def    int
	ct     *fv.Ciphertext
	cycles hwsim.Cycles
	err    error
}

// SubmitProgram admits a compiled program and blocks until every output is
// computed, the deadline passes, or the context is canceled. Admission is
// bounded by Config.MaxPrograms (ErrOverloaded beyond it); missing
// evaluation keys fail fast with ErrNoKey before any node executes.
func (e *Engine) SubmitProgram(ctx context.Context, op ProgramOp) (*ProgramResult, error) {
	p := op.Prog
	if p == nil {
		return nil, errors.New("engine: nil program")
	}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	if err := p.CheckParams(e.cfg.Params); err != nil {
		return nil, err
	}
	if len(op.Inputs) != p.NumInputs {
		return nil, fmt.Errorf("engine: program needs %d inputs, got %d", p.NumInputs, len(op.Inputs))
	}
	if err := e.programNoiseGuard(p, op.BudgetHint); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Admission: one slot per in-flight program, non-blocking like Submit.
	// A program also charges one unit of the tenant's in-flight quota.
	tc := e.tenant(op.Tenant)
	if err := e.admitTenant(tc); err != nil {
		return nil, err
	}
	select {
	case e.progSlots <- struct{}{}:
	default:
		tc.inflight.Add(-1)
		e.m.rejected.Add(1)
		return nil, ErrOverloaded
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		<-e.progSlots
		tc.inflight.Add(-1)
		return nil, ErrShutdown
	}
	// progWG is raised under the same lock that Shutdown takes to set
	// closed, so Shutdown's progWG.Wait() cannot miss us.
	e.progWG.Add(1)
	e.mu.RUnlock()
	defer func() {
		e.progWG.Done()
		<-e.progSlots
		tc.inflight.Add(-1)
	}()

	now := time.Now()
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if e.cfg.Deadline > 0 {
		if d := now.Add(e.cfg.Deadline); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	e.m.submitted.Add(1)

	res, err := e.runProgram(ctx, op, deadline)
	if err != nil {
		if errors.Is(err, ErrDeadlineExceeded) {
			e.m.expired.Add(1)
		} else {
			e.m.failed.Add(1)
			tc.failed.Add(1)
		}
		return nil, err
	}
	res.Wait = time.Since(now)
	e.m.programs.Add(1)
	e.m.programNodes.Add(uint64(res.Nodes))
	e.m.completed.Add(1)
	tc.completed.Add(1)
	tc.programs.Add(1)
	tc.simCycles.Add(uint64(res.MakespanCycles))
	return res, nil
}

// runProgram is the scheduler proper: key prologue, then one wavefront at a
// time through the worker pool.
func (e *Engine) runProgram(ctx context.Context, op ProgramOp, deadline time.Time) (*ProgramResult, error) {
	p := op.Prog
	tc := e.tenant(op.Tenant)

	// Key prologue: resolve and charge every evaluation key the program
	// needs exactly once. Op-at-a-time serving pays this per batch (and per
	// LRU miss); a program pays it per submission, period.
	var (
		rk        *fv.RelinKey
		gks       = map[int]*fv.GaloisKey{}
		keyCycles hwsim.Cycles
		keyLoads  int
	)
	anyAccel := e.workers[0].accel
	if p.NeedsRelinKey() {
		if rk = e.keys.relin(op.Tenant); rk == nil {
			return nil, fmt.Errorf("%w: relinearization key for tenant %q", ErrNoKey, op.Tenant)
		}
		keyCycles += anyAccel.KeyStreamCycles(core.RelinKeyBytes(e.cfg.Params, rk))
		keyLoads++
	}
	for _, g := range p.GaloisElements() {
		gk := e.keys.galois(op.Tenant, g)
		if gk == nil {
			return nil, fmt.Errorf("%w: Galois key for element %d, tenant %q", ErrNoKey, g, op.Tenant)
		}
		gks[g] = gk
		keyCycles += anyAccel.KeyStreamCycles(core.GaloisKeyBytes(e.cfg.Params, gk))
		keyLoads++
	}
	e.m.keyLoads.Add(uint64(keyLoads))
	tc.keyLoads.Add(uint64(keyLoads))

	analysis := p.Analyze()
	plains := program.MaterializePlains(e.cfg.Params, p)
	vals := make([]*fv.Ciphertext, p.NumValues())
	copy(vals, op.Inputs)
	nodeCycles := make([]hwsim.Cycles, p.NumValues())
	retriesLeft := make([]int, len(p.Nodes))
	for i := range retriesLeft {
		retriesLeft[i] = e.cfg.MaxIntegrityRetries
	}

	makespan := keyCycles
	serial := keyCycles
	totalRetries := 0

	for _, level := range analysis.Levels {
		if err := e.programTick(ctx, deadline); err != nil {
			return nil, err
		}
		// Dispatch the whole wavefront: every node's operands are defined in
		// strictly earlier levels, so vals reads here race with nothing.
		pending := level
		results := make(chan progNodeResult, len(level))
		for len(pending) > 0 {
			for _, ni := range pending {
				n := p.Nodes[ni]
				t := &progTask{op: n.Op, a: vals[n.A], def: p.NumInputs + ni, res: results}
				switch {
				case n.Op == program.OpAdd || n.Op == program.OpSub:
					t.b = vals[n.B]
				case n.Op == program.OpMul || n.Op == program.OpMulNR:
					t.b = vals[n.B]
					t.rk = rk
				case n.Op == program.OpRelin:
					t.rk = rk
				case n.Op == program.OpRotate:
					t.g = n.B
					t.gk = gks[n.B]
				case n.Op == program.OpAddPlain || n.Op == program.OpMulPlain:
					t.plain = plains[n.B]
				}
				select {
				case e.progTasks <- t:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			// Collect the wavefront. Integrity failures re-dispatch the node
			// (operands are still pristine in vals), up to the same retry
			// budget single ops get.
			var redo []int
			for range pending {
				r := <-results
				ni := r.def - p.NumInputs
				if r.err != nil {
					if errors.Is(r.err, hwsim.ErrIntegrity) && retriesLeft[ni] > 0 {
						retriesLeft[ni]--
						totalRetries++
						e.m.integrityRetries.Add(1)
						redo = append(redo, ni)
						continue
					}
					return nil, fmt.Errorf("engine: program node %d (%v): %w", ni, p.Nodes[ni].Op, r.err)
				}
				vals[r.def] = r.ct
				nodeCycles[r.def] = r.cycles
			}
			pending = redo
		}
		// Deterministic makespan: place the level's (data-independent) node
		// costs on Config.Workers virtual lanes round-robin, in node order.
		lanes := make([]hwsim.Cycles, e.cfg.Workers)
		for i, ni := range level {
			c := nodeCycles[p.NumInputs+ni]
			lanes[i%len(lanes)] += c
			serial += c
		}
		levelSpan := hwsim.Cycles(0)
		for _, l := range lanes {
			if l > levelSpan {
				levelSpan = l
			}
		}
		makespan += levelSpan
	}

	outs := make([]*fv.Ciphertext, len(p.Outputs))
	for i, o := range p.Outputs {
		outs[i] = vals[o]
	}
	return &ProgramResult{
		Outputs:        outs,
		Nodes:          len(p.Nodes),
		MakespanCycles: makespan,
		SerialCycles:   serial,
		KeyLoadCycles:  keyCycles,
		KeyLoads:       keyLoads,
		Workers:        e.cfg.Workers,
		Retries:        totalRetries,
	}, nil
}

// programTick enforces deadline and cancellation between wavefronts.
func (e *Engine) programTick(ctx context.Context, deadline time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}

// programNoiseGuard pre-screens the whole program through the fv noise
// model: if the hinted input budget cannot survive to the outputs, refuse
// before spending a single simulated cycle.
func (e *Engine) programNoiseGuard(p *program.Program, hint float64) error {
	if e.noise == nil || hint <= 0 {
		return nil
	}
	predicted := p.PredictBudget(e.noise, hint)
	if predicted < e.cfg.MinNoiseBudgetBits {
		e.m.noiseRejected.Add(1)
		return fmt.Errorf("%w: program predicted to leave %.1f bits (floor %.1f)",
			ErrNoiseBudget, predicted, e.cfg.MinNoiseBudgetBits)
	}
	return nil
}

// runProgTask executes one DAG node on w. Accelerator-native ops (add, mul,
// rotate) run on the simulated co-processor with its cycle accounting and
// integrity checks; the rest run on the worker's software evaluator with
// cycles from swOpCycles so the makespan model stays in one currency.
func (e *Engine) runProgTask(w *worker, t *progTask) {
	if e.testExecHook != nil {
		e.testExecHook(w.id)
	}
	var (
		ct     *fv.Ciphertext
		cycles hwsim.Cycles
		err    error
	)
	start := time.Now()
	switch t.op {
	case program.OpAdd:
		var rep core.Report
		ct, rep, err = w.accel.Add(t.a, t.b)
		cycles = rep.ComputeCycles
	case program.OpMul:
		var rep core.Report
		ct, rep, err = w.accel.Mul(t.a, t.b, t.rk)
		cycles = rep.ComputeCycles
	case program.OpRotate:
		var rep core.Report
		ct, rep, err = w.accel.Rotate(t.a, t.gk)
		cycles = rep.ComputeCycles
	case program.OpSub:
		ct = w.ev.Sub(t.a, t.b)
		cycles = e.swOpCycles(1)
	case program.OpNeg:
		ct = w.ev.Neg(t.a)
		cycles = e.swOpCycles(1)
	case program.OpMulNR:
		ct = w.ev.MulNoRelin(t.a, t.b)
		cycles = e.swOpCycles(4) // tensor product: four cross multiplications
	case program.OpRelin:
		ct = w.ev.Relinearize(t.a, t.rk)
		cycles = e.swOpCycles(2 * t.rk.Ell)
	case program.OpAddPlain:
		ct = w.ev.AddPlain(t.a, t.plain)
		cycles = e.swOpCycles(1)
	case program.OpMulPlain:
		ct = w.ev.MulPlain(t.a, t.plain)
		cycles = e.swOpCycles(2)
	default:
		err = fmt.Errorf("engine: unsupported program opcode %d", uint8(t.op))
	}
	e.m.execTime.Observe(time.Since(start))
	if err != nil {
		if errors.Is(err, hwsim.ErrIntegrity) {
			e.m.integrityFaults.Add(1)
			w.integrityFails.Add(1)
		}
		t.res <- progNodeResult{def: t.def, err: err}
		return
	}
	w.ops.Add(1)
	w.simCycles.Add(uint64(cycles))
	t.res <- progNodeResult{def: t.def, ct: ct, cycles: cycles}
}

// swOpCycles models a software-executed program node in FPGA cycles so the
// makespan stays in one unit: `passes` coefficient-wise passes over a full
// R_q ciphertext component (k residue rows of n lanes, two lanes per RPAU
// cycle, rows fanned across the co-processor's RPAUs) plus one instruction
// dispatch. This mirrors the hwsim CADD/CMUL cost shape (n/2 + pipeline
// depth per row wave).
func (e *Engine) swOpCycles(passes int) hwsim.Cycles {
	c := e.workers[0].accel.Platform.Coprocs[0]
	k := c.KQ
	rpaus := c.NumRPAUs()
	rowWaves := (k + rpaus - 1) / rpaus
	perPass := hwsim.Cycles(rowWaves * (c.N/2 + c.Timing.ButterflyPipelineDepth))
	return hwsim.Cycles(passes)*perPass + hwsim.Cycles(c.Timing.InstrDispatchCycles)
}
