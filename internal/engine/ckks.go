package engine

import (
	"fmt"

	"repro/internal/ckks"
	"repro/internal/core"
)

// ckksWorker is a pool worker's approximate-arithmetic lane: a CKKS chain
// accelerator for the hardware kinds plus the software evaluator and encoder
// for plaintext-operand kinds (the co-processor has no plaintext
// instruction, mirroring how BFV program nodes fall back to software).
type ckksWorker struct {
	accel *core.CKKSAccelerator
	ev    *ckks.Evaluator
	enc   *ckks.Encoder
}

// alignLevels drops the fresher operand's spare chain rows so both sit at
// the more-consumed level — the standard CKKS maintenance step, done
// server-side so clients can combine ciphertexts from different depths
// without tracking the chain themselves. DropLevel is exact (no division).
func (ck *ckksWorker) alignLevels(a, b *ckks.Ciphertext) (*ckks.Ciphertext, *ckks.Ciphertext) {
	if a.Level() > b.Level() {
		a = ck.ev.DropLevel(a, b.Level())
	} else if b.Level() > a.Level() {
		b = ck.ev.DropLevel(b, a.Level())
	}
	return a, b
}

// execCKKS serves one CKKS operation on w. Add/Mul/Rotate run on the chain
// co-processor and report its cycles; the plaintext kinds run on the
// application core (zero co-processor cycles in the report).
func (e *Engine) execCKKS(w *worker, op Op, rk *ckks.RelinKey, gk *ckks.GaloisKey) (*ckks.Ciphertext, core.Report, error) {
	ck := w.ckks
	if ck == nil {
		return nil, core.Report{}, ErrCKKSUnavailable
	}
	p := e.cfg.CKKSParams
	switch op.Kind {
	case OpCKKSAdd:
		a, b := ck.alignLevels(op.CA, op.CB)
		return ck.accel.Add(a, b)
	case OpCKKSMul:
		a, b := ck.alignLevels(op.CA, op.CB)
		return ck.accel.Mul(a, b, rk)
	case OpCKKSRotate:
		return ck.accel.Rotate(op.CA, op.R, gk)
	case OpCKKSAddPlain:
		ct := op.CA
		pt, err := ck.enc.Encode(op.Plain, ct.Level(), ct.Scale)
		if err != nil {
			return nil, core.Report{}, fmt.Errorf("engine: encoding add_plain operand: %w", err)
		}
		return ck.ev.AddPlain(ct, pt), core.Report{}, nil
	case OpCKKSMulPlain:
		ct := op.CA
		level := ct.Level()
		if level < 1 {
			return nil, core.Report{}, fmt.Errorf("engine: mul_plain at level 0 — no level left to rescale into")
		}
		// Encode the constant at the scale that lands the rescaled product
		// exactly on the default scale, whatever the operand's drift — this
		// is what keeps long plaintext/ciphertext chains addable.
		scale := p.ScaleUpTo(ct.Scale, level, p.DefaultScale())
		pt, err := ck.enc.Encode(op.Plain, level, scale)
		if err != nil {
			return nil, core.Report{}, fmt.Errorf("engine: encoding mul_plain operand: %w", err)
		}
		return ck.ev.Rescale(ck.ev.MulPlain(ct, pt)), core.Report{}, nil
	}
	return nil, core.Report{}, fmt.Errorf("engine: unknown ckks op kind %d", uint8(op.Kind))
}
