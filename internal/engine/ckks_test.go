package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/ckks"
	"repro/internal/fv"
	"repro/internal/sampler"
)

type ckksEngineEnv struct {
	eng  *Engine
	p    *ckks.Params
	sk   *ckks.SecretKey
	enc  *ckks.Encoder
	encr *ckks.Encryptor
}

func newCKKSEngineEnv(t *testing.T, workers int) *ckksEngineEnv {
	t.Helper()
	fvParams, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParams(ckks.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Params: fvParams, CKKSParams: p, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Shutdown(context.Background()) })

	prng := sampler.NewPRNG(77)
	kg := ckks.NewKeyGenerator(p, prng)
	sk, pk, rk := kg.GenKeys()
	eng.SetCKKSRelinKey("", rk)
	eng.SetCKKSGaloisKey("", kg.GenGaloisKey(sk, p.GaloisElementForRotation(1)))
	return &ckksEngineEnv{
		eng:  eng,
		p:    p,
		sk:   sk,
		enc:  ckks.NewEncoder(p),
		encr: ckks.NewEncryptor(p, pk, prng),
	}
}

func (env *ckksEngineEnv) encrypt(t *testing.T, vals []float64) *ckks.Ciphertext {
	t.Helper()
	pt, err := env.enc.Encode(vals, env.p.MaxLevel(), env.p.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	return env.encr.Encrypt(pt)
}

func (env *ckksEngineEnv) decode(ct *ckks.Ciphertext) []float64 {
	return env.enc.Decode(ckks.NewDecryptor(env.p, env.sk).Decrypt(ct))
}

func (env *ckksEngineEnv) submit(t *testing.T, op Op) *Result {
	t.Helper()
	res, err := env.eng.Submit(context.Background(), op)
	if err != nil {
		t.Fatalf("%v: %v", op.Kind, err)
	}
	if res.CCt == nil {
		t.Fatalf("%v: no CKKS result ciphertext", op.Kind)
	}
	return res
}

func TestEngineCKKSOps(t *testing.T) {
	env := newCKKSEngineEnv(t, 2)
	n := env.p.Slots()
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%7)/10.0 - 0.3
		ws[i] = float64(i%5)/10.0 - 0.2
	}
	ctX := env.encrypt(t, xs)
	ctW := env.encrypt(t, ws)

	check := func(name string, ct *ckks.Ciphertext, want func(i int) float64, tol float64) {
		t.Helper()
		got := env.decode(ct)
		for i := 0; i < n; i++ {
			if d := math.Abs(got[i] - want(i)); d > tol {
				t.Fatalf("%s slot %d: got %g, want %g (err %g)", name, i, got[i], want(i), d)
			}
		}
	}

	sum := env.submit(t, Op{Kind: OpCKKSAdd, CA: ctX, CB: ctW})
	check("add", sum.CCt, func(i int) float64 { return xs[i] + ws[i] }, 1e-4)

	prod := env.submit(t, Op{Kind: OpCKKSMul, CA: ctX, CB: ctW})
	if prod.CCt.Level() != ctX.Level()-1 {
		t.Fatalf("mul result level %d, want %d", prod.CCt.Level(), ctX.Level()-1)
	}
	check("mul", prod.CCt, func(i int) float64 { return xs[i] * ws[i] }, 1e-3)

	// Mismatched levels auto-align server-side (fresh × rescaled).
	mixed := env.submit(t, Op{Kind: OpCKKSMul, CA: ctX, CB: prod.CCt})
	check("mul-mixed", mixed.CCt, func(i int) float64 { return xs[i] * xs[i] * ws[i] }, 1e-3)

	rot := env.submit(t, Op{Kind: OpCKKSRotate, CA: ctX, R: 1})
	check("rotate", rot.CCt, func(i int) float64 { return xs[(i+1)%n] }, 1e-4)

	ap := env.submit(t, Op{Kind: OpCKKSAddPlain, CA: ctX, Plain: ws})
	check("add_plain", ap.CCt, func(i int) float64 { return xs[i] + ws[i] }, 1e-4)

	mp := env.submit(t, Op{Kind: OpCKKSMulPlain, CA: ctX, Plain: ws})
	if mp.CCt.Level() != ctX.Level()-1 {
		t.Fatalf("mul_plain level %d, want %d", mp.CCt.Level(), ctX.Level()-1)
	}
	if mp.CCt.Scale != env.p.DefaultScale() {
		t.Fatalf("mul_plain scale %g, want default %g", mp.CCt.Scale, env.p.DefaultScale())
	}
	check("mul_plain", mp.CCt, func(i int) float64 { return xs[i] * ws[i] }, 1e-3)
}

func TestEngineCKKSKeyErrors(t *testing.T) {
	env := newCKKSEngineEnv(t, 1)
	vals := make([]float64, env.p.Slots())
	ct := env.encrypt(t, vals)

	// Unregistered tenant: typed ErrNoKey for both key-consuming kinds.
	if _, err := env.eng.Submit(context.Background(), Op{Kind: OpCKKSMul, Tenant: "ghost", CA: ct, CB: ct}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("mul without key: %v, want ErrNoKey", err)
	}
	if _, err := env.eng.Submit(context.Background(), Op{Kind: OpCKKSRotate, Tenant: "ghost", CA: ct, R: 1}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("rotate without key: %v, want ErrNoKey", err)
	}
	// Unprovisioned rotation amount under the default tenant too.
	if _, err := env.eng.Submit(context.Background(), Op{Kind: OpCKKSRotate, CA: ct, R: 3}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("rotate by 3 without key: %v, want ErrNoKey", err)
	}
}

func TestEngineCKKSUnavailable(t *testing.T) {
	fvParams, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Params: fvParams, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown(context.Background())
	p, err := ckks.NewParams(ckks.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ct := ckks.NewCiphertext(p, 1, p.MaxLevel())
	if _, err := eng.Submit(context.Background(), Op{Kind: OpCKKSAdd, CA: ct, CB: ct}); !errors.Is(err, ErrCKKSUnavailable) {
		t.Fatalf("ckks on a BFV-only engine: %v, want ErrCKKSUnavailable", err)
	}
}
