package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fv"
	"repro/internal/program"
)

// mulChain builds a serial chain of `depth` multiplications over one input
// pair — every mul needs the relin key, so op-at-a-time serving with a cold
// cache would stream it `depth` times.
func mulChain(t *testing.T, depth int) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	acc := b.Mul(x, y)
	for i := 1; i < depth; i++ {
		acc = b.Mul(acc, y)
	}
	b.Output(acc)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wideTree builds a balanced add tree over n inputs — wavefronts of width
// n/2, n/4, ... that a multi-worker pool can fan out.
func wideTree(t *testing.T, n int) *program.Program {
	t.Helper()
	p, err := program.CompileAddTree(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProgramMatchesInterpreter: the scheduled execution must be
// bit-identical to the software reference interpreter — divergence would be
// a scheduling (dependence) bug, not arithmetic.
func TestProgramMatchesInterpreter(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "acme", 7)
	e := newEngine(t, params, Config{Workers: 3})
	e.SetRelinKey(tn.name, tn.rk)

	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	m := b.Mul(x, y)
	s := b.Add(m, x)
	d := b.Sub(s, y)
	one := make([]uint64, params.N())
	one[0] = 1
	b.Output(b.AddPlain(d, b.Plaintext(one)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	ctA := tn.encrypt(params, 3, 11)
	ctB := tn.encrypt(params, 5, 12)
	res, err := e.SubmitProgram(context.Background(), ProgramOp{
		Tenant: tn.name, Prog: p, Inputs: []*fv.Ciphertext{ctA, ctB},
	})
	if err != nil {
		t.Fatalf("SubmitProgram: %v", err)
	}
	want, err := program.Run(params, p, []*fv.Ciphertext{ctA, ctB}, program.Keys{Relin: tn.rk})
	if err != nil {
		t.Fatal(err)
	}
	// (3·5 + 3 − 5 + 1) mod 257 = 14.
	if got := tn.decrypt(params, res.Outputs[0]); got != 14 {
		t.Fatalf("program output decrypts to %d, want 14", got)
	}
	gotPt := fv.NewDecryptor(params, tn.sk).Decrypt(res.Outputs[0])
	wantPt := fv.NewDecryptor(params, tn.sk).Decrypt(want[0])
	for i := range gotPt.Coeffs {
		if gotPt.Coeffs[i] != wantPt.Coeffs[i] {
			t.Fatalf("coefficient %d diverges from the reference interpreter", i)
		}
	}
	if res.Nodes != len(p.Nodes) {
		t.Fatalf("Nodes = %d, want %d", res.Nodes, len(p.Nodes))
	}
}

// TestProgramLoadsEachKeyOnce is the acceptance check for the key prologue:
// a deep mul chain — every node needing the relin key — must charge exactly
// ONE key load for the whole program.
func TestProgramLoadsEachKeyOnce(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "acme", 7)
	e := newEngine(t, params, Config{Workers: 2, KeyCacheSlots: 1})
	e.SetRelinKey(tn.name, tn.rk)

	p := mulChain(t, 4)
	res, err := e.SubmitProgram(context.Background(), ProgramOp{
		Tenant: tn.name, Prog: p,
		Inputs: []*fv.Ciphertext{tn.encrypt(params, 1, 21), tn.encrypt(params, 1, 22)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyLoads != 1 {
		t.Fatalf("program streamed the relin key %d times, want 1", res.KeyLoads)
	}
	s := e.Stats()
	if s.KeyLoads != 1 {
		t.Fatalf("Stats.KeyLoads = %d after one program, want 1", s.KeyLoads)
	}
	if ts := s.PerTenant["acme"]; ts.KeyLoads != 1 || ts.Programs != 1 {
		t.Fatalf("tenant stats %+v, want 1 key load and 1 program", ts)
	}
	if res.KeyLoadCycles == 0 {
		t.Fatal("key prologue charged zero cycles")
	}

	// A second program for the same tenant is still a fresh admission unit:
	// it streams its own key (the scheduler does not assume residency across
	// programs) — exactly one more load.
	if _, err := e.SubmitProgram(context.Background(), ProgramOp{
		Tenant: tn.name, Prog: p,
		Inputs: []*fv.Ciphertext{tn.encrypt(params, 1, 23), tn.encrypt(params, 1, 24)},
	}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.KeyLoads != 2 {
		t.Fatalf("Stats.KeyLoads = %d after two programs, want 2", s.KeyLoads)
	}
}

// TestProgramMakespanDeterministicAndParallel: identical submissions must
// report identical makespans (virtual-lane accounting, not goroutine luck),
// and a wide wavefront on multiple workers must beat its own serial cost.
func TestProgramMakespanDeterministicAndParallel(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 4})

	p := wideTree(t, 16)
	inputs := make([]*fv.Ciphertext, 16)
	for i := range inputs {
		inputs[i] = tn.encrypt(params, 1, uint64(40+i))
	}
	r1, err := e.SubmitProgram(context.Background(), ProgramOp{Prog: p, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.SubmitProgram(context.Background(), ProgramOp{Prog: p, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanCycles != r2.MakespanCycles || r1.SerialCycles != r2.SerialCycles {
		t.Fatalf("makespan not deterministic: %d/%d vs %d/%d",
			r1.MakespanCycles, r1.SerialCycles, r2.MakespanCycles, r2.SerialCycles)
	}
	if r1.MakespanCycles >= r1.SerialCycles {
		t.Fatalf("wavefront makespan %d did not beat serial %d on %d workers",
			r1.MakespanCycles, r1.SerialCycles, r1.Workers)
	}
	if got := tn.decrypt(params, r1.Outputs[0]); got != 16%params.Cfg.T {
		t.Fatalf("add tree of 16 ones decrypts to %d", got)
	}
}

func TestProgramFailsFastWithoutKeys(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "nokey", 7)
	e := newEngine(t, params, Config{Workers: 1})

	p := mulChain(t, 2)
	_, err := e.SubmitProgram(context.Background(), ProgramOp{
		Tenant: "nokey", Prog: p,
		Inputs: []*fv.Ciphertext{tn.encrypt(params, 1, 31), tn.encrypt(params, 1, 32)},
	})
	if !errors.Is(err, ErrNoKey) {
		t.Fatalf("missing relin key: err = %v, want ErrNoKey", err)
	}
	if s := e.Stats(); s.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", s.Failed)
	}
}

func TestProgramAdmissionAndShutdown(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 1, MaxPrograms: 1})

	// Wrong input count is rejected before admission.
	p := wideTree(t, 4)
	if _, err := e.SubmitProgram(context.Background(), ProgramOp{Prog: p}); err == nil {
		t.Fatal("missing inputs accepted")
	}

	// After Shutdown, submission fails with ErrShutdown.
	e2, err := New(Config{Params: params, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	inputs := make([]*fv.Ciphertext, 4)
	for i := range inputs {
		inputs[i] = tn.encrypt(params, 1, uint64(50+i))
	}
	if _, err := e2.SubmitProgram(context.Background(), ProgramOp{Prog: p, Inputs: inputs}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown submit: %v, want ErrShutdown", err)
	}
}

func TestProgramNoiseGuard(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 1, NoiseGuard: true})
	e.SetRelinKey(tn.name, tn.rk)

	// A chain deeper than the parameter set supports, hinted with a fresh
	// budget, must be refused before execution.
	deep := mulChain(t, 24)
	m := fv.NewNoiseModel(params)
	inputs := []*fv.Ciphertext{tn.encrypt(params, 1, 61), tn.encrypt(params, 1, 62)}
	_, err := e.SubmitProgram(context.Background(), ProgramOp{
		Prog: deep, Inputs: inputs, BudgetHint: m.Fresh(),
	})
	if !errors.Is(err, ErrNoiseBudget) {
		t.Fatalf("hopeless program: err = %v, want ErrNoiseBudget", err)
	}
	if s := e.Stats(); s.NoiseRejected != 1 {
		t.Fatalf("NoiseRejected = %d, want 1", s.NoiseRejected)
	}

	// A shallow program with the same hint passes.
	if _, err := e.SubmitProgram(context.Background(), ProgramOp{
		Prog: mulChain(t, 1), Inputs: inputs, BudgetHint: m.Fresh(),
	}); err != nil {
		t.Fatalf("shallow hinted program rejected: %v", err)
	}
}

// TestProgramSharesPoolWithOps: single ops and a program in flight together
// must both complete — the two work sources share one worker pool without
// starving each other.
func TestProgramSharesPoolWithOps(t *testing.T) {
	params := testParams(t)
	tn := newTenant(t, params, "", 7)
	e := newEngine(t, params, Config{Workers: 2})
	e.SetRelinKey(tn.name, tn.rk)

	inputs := make([]*fv.Ciphertext, 8)
	for i := range inputs {
		inputs[i] = tn.encrypt(params, 1, uint64(70+i))
	}
	p := wideTree(t, 8)

	done := make(chan error, 2)
	go func() {
		_, err := e.SubmitProgram(context.Background(), ProgramOp{Prog: p, Inputs: inputs})
		done <- err
	}()
	go func() {
		_, err := e.Submit(context.Background(), Op{Kind: OpAdd, A: inputs[0], B: inputs[1]})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op/program: %v", err)
		}
	}
	s := e.Stats()
	if s.Programs != 1 || s.ProgramNodes != uint64(len(p.Nodes)) {
		t.Fatalf("Programs/ProgramNodes = %d/%d, want 1/%d", s.Programs, s.ProgramNodes, len(p.Nodes))
	}
}
