package engine

import (
	"context"
	"testing"
)

// TestEngineTenantStats: the per-tenant slice of Stats must attribute
// completions, failures, key loads, and simulated cycles to the tenant that
// caused them — the accounting the cluster layer's shard placement and the
// router's per-tenant dashboards are built on.
func TestEngineTenantStats(t *testing.T) {
	params := testParams(t)
	alice := newTenant(t, params, "alice", 21)
	bob := newTenant(t, params, "bob", 22)

	e := newEngine(t, params, Config{Workers: 1, MaxBatch: 2, KeyCacheSlots: 2})
	e.SetRelinKey(alice.name, alice.rk)
	e.SetRelinKey(bob.name, bob.rk)

	do := func(tn *tenant, n int) {
		for i := 0; i < n; i++ {
			a := tn.encrypt(params, uint64(i+2), uint64(3000+i))
			b := tn.encrypt(params, uint64(i+3), uint64(4000+i))
			if _, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: tn.name, A: a, B: b}); err != nil {
				t.Fatalf("%s op %d: %v", tn.name, i, err)
			}
		}
	}
	do(alice, 3)
	do(bob, 5)
	// A tenant without keys fails, and the failure lands on that tenant.
	a := alice.encrypt(params, 2, 5000)
	if _, err := e.Submit(context.Background(), Op{Kind: OpMul, Tenant: "stranger", A: a, B: a}); err == nil {
		t.Fatal("mul for a keyless tenant succeeded")
	}

	per := e.Stats().PerTenant
	if got := per[alice.name]; got.Completed != 3 || got.Failed != 0 {
		t.Fatalf("alice stats = %+v, want 3 completed", got)
	}
	if got := per[bob.name]; got.Completed != 5 || got.Failed != 0 {
		t.Fatalf("bob stats = %+v, want 5 completed", got)
	}
	if got := per["stranger"]; got.Failed != 1 || got.Completed != 0 {
		t.Fatalf("stranger stats = %+v, want 1 failed", got)
	}
	for _, name := range []string{alice.name, bob.name} {
		ts := per[name]
		if ts.SimCycles == 0 || ts.SimSeconds <= 0 {
			t.Fatalf("%s: no simulated time accounted: %+v", name, ts)
		}
		if ts.KeyLoads == 0 {
			t.Fatalf("%s: relin key use accounted no key load: %+v", name, ts)
		}
	}
	// More work means more simulated cycles.
	if per[bob.name].SimCycles <= per[alice.name].SimCycles {
		t.Fatalf("bob (5 muls, %d cycles) should out-cycle alice (3 muls, %d cycles)",
			per[bob.name].SimCycles, per[alice.name].SimCycles)
	}
	// Tenants with registered keys are advertised (sorted), traffic or not.
	names := e.Tenants()
	want := map[string]bool{alice.name: true, bob.name: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("Tenants() = %v misses %v", names, want)
	}
}
