package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fv"
	"repro/internal/program"
	"repro/internal/sampler"
)

// TestRunprogOffline drives the full file-based flow: keygen-equivalent key
// files, encrypted inputs, a compiled (a·b)+a program on disk, runprog, and
// a decrypt of the output file.
func TestRunprogOffline(t *testing.T) {
	dir := t.TempDir()
	params, err := fv.NewParams(fv.TestConfig(257))
	if err != nil {
		t.Fatal(err)
	}
	kg := fv.NewKeyGenerator(params, sampler.NewPRNG(17))
	sk, pk, rk := kg.GenKeys()
	write := func(name string, fn func(f *os.File) error) {
		t.Helper()
		if err := writeFile(filepath.Join(dir, name), fn); err != nil {
			t.Fatal(err)
		}
	}
	write("secret.key", func(f *os.File) error { return fv.WriteSecretKeyV2(f, params, sk) })
	write("public.key", func(f *os.File) error { return fv.WritePublicKeyV2(f, params, pk) })
	write("relin.key", func(f *os.File) error { return fv.WriteRelinKeyV2(f, params, rk) })

	enc := fv.NewEncryptor(params, pk, sampler.NewPRNG(23))
	encFile := func(name string, v uint64) string {
		t.Helper()
		pt := fv.NewPlaintext(params)
		pt.Coeffs[0] = v
		ct := enc.Encrypt(pt)
		path := filepath.Join(dir, name)
		write(name, func(f *os.File) error { return ct.WriteTo(f, params) })
		return path
	}
	aPath := encFile("a.ct", 3)
	bPath := encFile("b.ct", 5)

	b := program.NewBuilder()
	x, y := b.Input(), b.Input()
	b.Output(b.Add(b.Mul(x, y), x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	progPath := filepath.Join(dir, "circuit.hepg")
	if err := os.WriteFile(progPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "res.ct")
	if err := runprog(dir, progPath, outPath, []string{aPath, bPath}); err != nil {
		t.Fatal(err)
	}
	ct, err := loadCiphertext(outPath, params)
	if err != nil {
		t.Fatal(err)
	}
	// (3·5 + 3) mod 257 = 18.
	if got := fv.NewDecryptor(params, sk).Decrypt(ct).Coeffs[0]; got != 18 {
		t.Fatalf("runprog output decrypts to %d, want 18", got)
	}

	// Arity mismatch must be rejected before any work.
	if err := runprog(dir, progPath, outPath, []string{aPath}); err == nil {
		t.Fatal("runprog accepted the wrong input count")
	}
}
