// Command hecli is a file-based FV workbench: generate keys, encrypt
// integers, compute on the ciphertext files, and decrypt — each step a
// separate invocation, so the encrypted artifacts can be inspected, copied,
// or shipped to the heserver cloud.
//
// Usage:
//
//	hecli keygen  -dir keys [-paper] [-t 65537]
//	hecli encrypt -dir keys -value 123 -out a.ct
//	hecli add     -dir keys -in a.ct -in2 b.ct -out sum.ct
//	hecli mul     -dir keys -in a.ct -in2 b.ct -out prod.ct
//	hecli decrypt -dir keys -in prod.ct
//	hecli inspect -dir keys -in prod.ct        # noise budget (needs sk)
//	hecli runprog -dir keys -prog c.hepg -out res a.ct b.ct   # whole circuit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fv"
	"repro/internal/program"
	"repro/internal/sampler"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "keys", "key directory")
	paper := fs.Bool("paper", false, "use the paper parameter set (n = 4096)")
	tmod := fs.Uint64("t", 65537, "plaintext modulus (keygen only)")
	value := fs.Int64("value", 0, "integer to encrypt (encrypt only)")
	in := fs.String("in", "", "input ciphertext file")
	in2 := fs.String("in2", "", "second input ciphertext file")
	out := fs.String("out", "", "output ciphertext file")
	prog := fs.String("prog", "", "serialized compiled program (runprog only)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	var err error
	switch cmd {
	case "keygen":
		err = keygen(*dir, *paper, *tmod)
	case "encrypt":
		err = encrypt(*dir, *value, *out)
	case "add", "mul":
		err = combine(cmd, *dir, *in, *in2, *out)
	case "decrypt":
		err = decrypt(*dir, *in)
	case "inspect":
		err = inspect(*dir, *in)
	case "runprog":
		err = runprog(*dir, *prog, *out, fs.Args())
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hecli {keygen|encrypt|add|mul|decrypt|inspect|runprog} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hecli:", err)
	os.Exit(1)
}

func keygen(dir string, paper bool, tmod uint64) error {
	cfg := fv.TestConfig(tmod)
	if paper {
		cfg = fv.PaperConfig(tmod)
	}
	params, err := fv.NewParams(cfg)
	if err != nil {
		return err
	}
	kg := fv.NewKeyGenerator(params, sampler.NewRandomPRNG())
	sk, pk, rk := kg.GenKeys()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The checksummed v2 format: a truncated or bit-flipped key file fails
	// loudly at load time instead of silently corrupting every operation.
	if err := writeFile(filepath.Join(dir, "secret.key"), func(f *os.File) error {
		return fv.WriteSecretKeyV2(f, params, sk)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "public.key"), func(f *os.File) error {
		return fv.WritePublicKeyV2(f, params, pk)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "relin.key"), func(f *os.File) error {
		return fv.WriteRelinKeyV2(f, params, rk)
	}); err != nil {
		return err
	}
	fmt.Printf("hecli: keys written to %s (n=%d, log q=%d, t=%d, ~%d-bit security, depth %d)\n",
		dir, params.N(), params.LogQ(), params.T(), params.SecurityBits(), params.SupportedDepth())
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadPublic(dir string) (*fv.Params, *fv.PublicKey, error) {
	f, err := os.Open(filepath.Join(dir, "public.key"))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return fv.ReadPublicKey(f)
}

func loadSecret(dir string) (*fv.Params, *fv.SecretKey, error) {
	f, err := os.Open(filepath.Join(dir, "secret.key"))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return fv.ReadSecretKey(f)
}

func loadCiphertext(path string, params *fv.Params) (*fv.Ciphertext, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fv.ReadCiphertext(f, params)
}

func encrypt(dir string, value int64, out string) error {
	if out == "" {
		return fmt.Errorf("encrypt needs -out")
	}
	params, pk, err := loadPublic(dir)
	if err != nil {
		return err
	}
	enc := fv.NewEncryptor(params, pk, sampler.NewRandomPRNG())
	ct := enc.Encrypt(fv.NewIntegerEncoder(params).Encode(value))
	if err := writeFile(out, func(f *os.File) error {
		return ct.WriteTo(f, params)
	}); err != nil {
		return err
	}
	fmt.Printf("hecli: %d encrypted to %s (%d bytes)\n", value, out, ct.ByteSize(params))
	return nil
}

func combine(op, dir, inA, inB, out string) error {
	if inA == "" || inB == "" || out == "" {
		return fmt.Errorf("%s needs -in, -in2, -out", op)
	}
	params, _, err := loadPublic(dir)
	if err != nil {
		return err
	}
	a, err := loadCiphertext(inA, params)
	if err != nil {
		return err
	}
	b, err := loadCiphertext(inB, params)
	if err != nil {
		return err
	}
	ev := fv.NewEvaluator(params)
	var res *fv.Ciphertext
	if op == "add" {
		res = ev.Add(a, b)
	} else {
		f, err := os.Open(filepath.Join(dir, "relin.key"))
		if err != nil {
			return err
		}
		_, rk, err := fv.ReadRelinKey(f)
		f.Close()
		if err != nil {
			return err
		}
		res = ev.Mul(a, b, rk)
	}
	if err := writeFile(out, func(f *os.File) error {
		return res.WriteTo(f, params)
	}); err != nil {
		return err
	}
	fmt.Printf("hecli: %s(%s, %s) -> %s\n", op, inA, inB, out)
	return nil
}

func decrypt(dir, in string) error {
	if in == "" {
		return fmt.Errorf("decrypt needs -in")
	}
	params, sk, err := loadSecret(dir)
	if err != nil {
		return err
	}
	ct, err := loadCiphertext(in, params)
	if err != nil {
		return err
	}
	pt := fv.NewDecryptor(params, sk).Decrypt(ct)
	v, err := fv.NewIntegerEncoder(params).Decode(pt)
	if err != nil {
		return err
	}
	fmt.Printf("hecli: %s decrypts to %d\n", in, v)
	return nil
}

// runprog executes a serialized compiled program offline: the positional
// arguments are the input ciphertext files (one per program input, in
// order), and every program output lands in its own file. The relin key is
// loaded only when the program actually multiplies — an add-only tally runs
// with nothing but the public parameter set.
func runprog(dir, progPath, out string, inputPaths []string) error {
	if progPath == "" || out == "" {
		return fmt.Errorf("runprog needs -prog and -out")
	}
	data, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	p, err := program.DecodeBytes(data, program.DefaultLimits())
	if err != nil {
		return err
	}
	if len(inputPaths) != p.NumInputs {
		return fmt.Errorf("runprog: program needs %d input ciphertexts, got %d", p.NumInputs, len(inputPaths))
	}
	params, _, err := loadPublic(dir)
	if err != nil {
		return err
	}
	inputs := make([]*fv.Ciphertext, len(inputPaths))
	for i, path := range inputPaths {
		if inputs[i], err = loadCiphertext(path, params); err != nil {
			return err
		}
	}
	var keys program.Keys
	if p.NeedsRelinKey() {
		f, err := os.Open(filepath.Join(dir, "relin.key"))
		if err != nil {
			return err
		}
		_, keys.Relin, err = fv.ReadRelinKey(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	outs, err := program.Run(params, p, inputs, keys)
	if err != nil {
		return err
	}
	for i, ct := range outs {
		path := out
		if len(outs) > 1 {
			path = fmt.Sprintf("%s-%d.ct", out, i)
		}
		if err := writeFile(path, func(f *os.File) error {
			return ct.WriteTo(f, params)
		}); err != nil {
			return err
		}
	}
	fmt.Printf("hecli: ran %s (%d nodes) on %d inputs -> %d output(s) at %s\n",
		progPath, len(p.Nodes), len(inputs), len(outs), out)
	return nil
}

func inspect(dir, in string) error {
	if in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	params, sk, err := loadSecret(dir)
	if err != nil {
		return err
	}
	ct, err := loadCiphertext(in, params)
	if err != nil {
		return err
	}
	budget := fv.NoiseBudget(params, sk, ct)
	fmt.Printf("hecli: %s — degree %d, %d bytes, noise budget %d bits\n",
		in, ct.Degree(), ct.ByteSize(params), budget)
	if budget == 0 {
		fmt.Println("hecli: WARNING — the ciphertext no longer decrypts correctly")
	}
	return nil
}
