// Command heasm works with the co-processor's assembly format: it
// validates, disassembles, and executes instruction programs on a simulated
// co-processor, reporting per-instruction and total cycle costs. It turns
// the "domain-specific programmable" claim of the paper into a workflow:
// write a homomorphic routine as assembly, time it without a schedule in Go.
//
// Usage:
//
//	heasm -check prog.asm          # assemble + static validation
//	heasm -run prog.asm            # execute on random data, report cycles
//	heasm -mult                    # print the built-in Mult program
//	heasm -prog circuit.hepg       # disassemble a serialized compiled program
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fv"
	"repro/internal/hebench"
	"repro/internal/hwsim"
	"repro/internal/program"
	"repro/internal/sampler"
)

func main() {
	check := flag.String("check", "", "assemble and validate the program file")
	run := flag.String("run", "", "assemble, validate, and execute the program file on random data")
	mult := flag.Bool("mult", false, "print the built-in FV.Mult program (small parameter set)")
	prog := flag.String("prog", "", "disassemble a serialized compiled program (internal/program codec)")
	slots := flag.Int("slots", 16, "memory-file slots")
	flag.Parse()

	switch {
	case *mult:
		suite, err := hebench.NewSuite(fv.TestConfig(2))
		if err != nil {
			fatal(err)
		}
		listing, err := suite.MulProgramListing()
		if err != nil {
			fatal(err)
		}
		fmt.Print(listing)

	case *check != "":
		prog, err := load(*check, *slots)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("heasm: %s OK (%d steps)\n", *check, len(prog.Steps))
		fmt.Print(hwsim.DisasmProgram(prog))

	case *run != "":
		prog, err := load(*run, *slots)
		if err != nil {
			fatal(err)
		}
		if err := execute(prog, *slots); err != nil {
			fatal(err)
		}

	case *prog != "":
		out, err := disasmProgramFile(*prog)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heasm:", err)
	os.Exit(1)
}

// disasmProgramFile decodes a serialized compiled circuit (the "HEPG"
// format programs cross the wire in) under the server's decode limits,
// re-verifies it, and returns the deterministic disassembly — checksum,
// per-node depth/level annotations, cost ledger, and critical path.
func disasmProgramFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	p, err := program.DecodeBytes(data, program.DefaultLimits())
	if err != nil {
		return "", err
	}
	return program.Disasm(p), nil
}

func load(path string, slots int) (*hwsim.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := hwsim.Assemble(string(src))
	if err != nil {
		return nil, err
	}
	if err := hwsim.ValidateProgram(prog, slots); err != nil {
		return nil, err
	}
	return prog, nil
}

func execute(prog *hwsim.Program, slots int) error {
	params, err := fv.NewParams(fv.TestConfig(2))
	if err != nil {
		return err
	}
	c, err := hwsim.NewCoprocessor(params.QMods, params.PMods, params.N(),
		params.Lifter, params.Scaler, hwsim.VariantHPS, hwsim.DefaultTiming(), slots)
	if err != nil {
		return err
	}
	// Seed every slot's q rows with random coefficient-domain data so any
	// program has operands to chew on.
	prng := sampler.NewPRNG(1)
	for s := 0; s < slots; s++ {
		c.LoadSlotCoeff(uint8(s), 0, sampler.UniformPoly(prng, params.QMods, params.N()).Rows)
	}
	total := hwsim.Cycles(0)
	for i, st := range prog.Steps {
		var cyc hwsim.Cycles
		var err error
		switch {
		case st.Instr != nil:
			cyc, err = c.Exec(*st.Instr)
			if err != nil {
				return fmt.Errorf("step %d (%s): %w", i, st.Instr.Disasm(), err)
			}
			fmt.Printf("%4d  %-34s ; %7d cycles (%.1f µs)\n", i, st.Instr.Disasm(), cyc, cyc.Micros())
		case st.Transfer != nil:
			cyc = c.Transfer(*st.Transfer)
			fmt.Printf("%4d  dma   %-28d ; %7d cycles (%.1f µs)\n", i, st.Transfer.Bytes, cyc, cyc.Micros())
		}
		total += cyc
	}
	fmt.Printf("      total %d cycles = %.3f ms at 200 MHz (n=%d, %d+%d primes)\n",
		total, total.Seconds()*1e3, params.N(), params.QBasis.K(), params.PBasis.K())
	return nil
}
