package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fv"
	"repro/internal/program"
)

// goldenProgram compiles the reference circuit the golden file pins: a 2-row
// encrypted-search table with 4-bit keys at the small t=2 parameter set.
// Deterministic end to end — the builder interns plaintexts in first-use
// order and the codec is canonical — so the disassembly is byte-stable.
func goldenProgram(t *testing.T) *program.Program {
	t.Helper()
	params, err := fv.NewParams(fv.TestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.CompileEncSearch(params, []program.TableEntry{
		{Key: 0b1010, Value: 7},
		{Key: 0b0110, Value: 9},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProgDisasmGolden pins heasm -prog output for the reference circuit.
// Regenerate with: HEASM_UPDATE=1 go test ./cmd/heasm -run TestProgDisasmGolden
func TestProgDisasmGolden(t *testing.T) {
	p := goldenProgram(t)
	data, err := p.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "encsearch.hepg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := disasmProgramFile(path)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "encsearch_disasm.golden")
	if update() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("disassembly drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A corrupted file must fail with the codec's typed error, not junk
	// output: flip one payload byte so the checksum no longer matches.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	badPath := filepath.Join(t.TempDir(), "bad.hepg")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disasmProgramFile(badPath); err == nil {
		t.Fatal("corrupted program disassembled cleanly")
	}
}

// update reports whether the golden file should be regenerated (an env var,
// not a flag, so it cannot collide with the test binary's flag set).
func update() bool { return os.Getenv("HEASM_UPDATE") != "" }
