package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHerouter compiles the command once per test binary; each table entry
// then runs the real executable, so the exit-code contract is tested end to
// end, flag parsing included.
func buildHerouter(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "herouter")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building herouter: %v\n%s", err, out)
	}
	return bin
}

// TestInvalidFlagsExitTwo pins the CLI contract: every invalid invocation
// must exit with status 2 (the usage-error code, matching heserver) and name
// the offending flag on stderr — not hang, not exit 1, not start serving.
func TestInvalidFlagsExitTwo(t *testing.T) {
	bin := buildHerouter(t)
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no backends", nil, "-backends is required"},
		{"empty addr", []string{"-addr", " ", "-backends", "127.0.0.1:7101"}, "-addr"},
		{"bad backend entry", []string{"-backends", "id="}, "backend"},
		{"zero replicas", []string{"-backends", "127.0.0.1:7101", "-replicas", "0"}, "-replicas"},
		{"zero vnodes", []string{"-backends", "127.0.0.1:7101", "-vnodes", "0"}, "-vnodes"},
		{"negative attempts", []string{"-backends", "127.0.0.1:7101", "-attempts", "-1"}, "-attempts"},
		{"zero attempt timeout", []string{"-backends", "127.0.0.1:7101", "-attempt-timeout", "0s"}, "-attempt-timeout"},
		{"zero pool", []string{"-backends", "127.0.0.1:7101", "-pool", "0"}, "-pool"},
		{"zero probe interval", []string{"-backends", "127.0.0.1:7101", "-probe-interval", "0s"}, "-probe-interval"},
		{"zero probe timeout", []string{"-backends", "127.0.0.1:7101", "-probe-timeout", "0s"}, "-probe-timeout"},
		{"zero fail threshold", []string{"-backends", "127.0.0.1:7101", "-fail-threshold", "0"}, "-fail-threshold"},
		{"zero read timeout", []string{"-backends", "127.0.0.1:7101", "-read-timeout", "0s"}, "-read-timeout"},
		{"zero drain timeout", []string{"-backends", "127.0.0.1:7101", "-drain-timeout", "0s"}, "-drain-timeout"},
		{"unknown flag", []string{"-no-such-flag"}, "no-such-flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit code %d, want 2\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.want, out)
			}
		})
	}
}
