// Command herouter fronts a fleet of heserver nodes with one endpoint: the
// scale-out tier above the paper's Fig. 11 platform. It speaks the same wire
// protocol as heserver (v1 and v2), shards tenants across the backends with
// a consistent-hash ring, health-checks every node (ejecting dead ones and
// rerouting their tenants to ring replicas), and retries idempotent
// requests on a replica within a bounded budget.
//
// Usage:
//
//	heserver -addr :7101 -seed 42 &
//	heserver -addr :7102 -seed 42 &
//	herouter -addr :7100 -backends 127.0.0.1:7101,127.0.0.1:7102
//
// Backends may be given as "host:port" (the address doubles as the ring ID)
// or "id=host:port" when stable ring identities should survive address
// changes. All backends must share the parameter set and seed — evaluation
// keys are fully replicated, so any replica can serve any tenant.
//
// Membership is live: the CmdAdmin wire command (join/leave/drain) and the
// -watch membership file both rebalance the ring with minimal movement,
// migrating the moved tenants' evaluation-key state to the new owners
// before the cutover so no request is dropped. See README "Rolling
// restarts".
//
// Observability: SIGUSR1 dumps the router snapshot (membership, per-backend
// health, retry/reroute counters, per-backend latency histograms) as JSON to
// stderr; the same dump is emitted on graceful shutdown. With -debug-addr
// set, /debug/vars (expvar, including the "cluster" snapshot) and
// /debug/stats are served over HTTP.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fv"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	backendsFlag := flag.String("backends", "", "comma-separated backend list: host:port or id=host:port (required)")
	paper := flag.Bool("paper", false, "use the paper parameter set (n = 4096) instead of the small test set")
	tmod := flag.Uint64("t", 65537, "plaintext modulus (must match the backends)")
	replicas := flag.Int("replicas", 2, "failover candidates per tenant on the ring")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per backend on the ring")
	attempts := flag.Int("attempts", 0, "retry budget per request (0 = replicas)")
	attemptTimeout := flag.Duration("attempt-timeout", 2*time.Second, "per-attempt deadline")
	poolSize := flag.Int("pool", 4, "idle connections kept per backend (ignored with -mux)")
	muxMode := flag.Bool("mux", false, "multiplex all traffic to each backend over one shared connection (many in-flight request IDs with window flow control) instead of per-request pooled connections")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health probe period per backend")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health probe deadline")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive failures that eject a backend")
	loadAware := flag.Bool("load-aware", false, "spill hot tenants from an overloaded primary to a less-loaded ring replica (EWMA latency x queue depth)")
	loadSpill := flag.Float64("load-spill", 2.0, "primary-vs-best load ratio that triggers a load-aware spill")
	watch := flag.String("watch", "", "membership file to poll (same format as -backends, one entry per line); joins and leaves are applied live with key-state migration")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll period for -watch")
	nodeID := flag.String("node-id", "herouter", "node name advertised in info replies")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "per-request read deadline on client connections")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight work")
	debugAddr := flag.String("debug-addr", "", "listen address for the HTTP debug endpoint; empty disables it")
	flag.Parse()

	backends, err := parseBackends(*backendsFlag)
	if err != nil {
		usageError(err)
	}
	switch {
	case strings.TrimSpace(*addr) == "":
		usageError(fmt.Errorf("-addr must not be empty"))
	case *replicas <= 0:
		usageError(fmt.Errorf("-replicas must be positive, got %d", *replicas))
	case *vnodes <= 0:
		usageError(fmt.Errorf("-vnodes must be positive, got %d", *vnodes))
	case *attempts < 0:
		usageError(fmt.Errorf("-attempts must be >= 0, got %d", *attempts))
	case *attemptTimeout <= 0:
		usageError(fmt.Errorf("-attempt-timeout must be positive, got %v", *attemptTimeout))
	case *poolSize <= 0:
		usageError(fmt.Errorf("-pool must be positive, got %d", *poolSize))
	case *probeInterval <= 0:
		usageError(fmt.Errorf("-probe-interval must be positive, got %v", *probeInterval))
	case *probeTimeout <= 0:
		usageError(fmt.Errorf("-probe-timeout must be positive, got %v", *probeTimeout))
	case *failThreshold <= 0:
		usageError(fmt.Errorf("-fail-threshold must be positive, got %d", *failThreshold))
	case *readTimeout <= 0:
		usageError(fmt.Errorf("-read-timeout must be positive, got %v", *readTimeout))
	case *drainTimeout <= 0:
		usageError(fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout))
	case *loadSpill <= 1:
		usageError(fmt.Errorf("-load-spill must be > 1, got %v", *loadSpill))
	case *watchInterval <= 0:
		usageError(fmt.Errorf("-watch-interval must be positive, got %v", *watchInterval))
	}

	cfg := fv.TestConfig(*tmod)
	if *paper {
		cfg = fv.PaperConfig(*tmod)
	}
	params, err := fv.NewParams(cfg)
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)

	router, err := cluster.NewRouter(cluster.Config{
		Params:          params,
		Backends:        backends,
		VirtualNodes:    *vnodes,
		Replicas:        *replicas,
		MaxAttempts:     *attempts,
		AttemptTimeout:  *attemptTimeout,
		PoolSize:        *poolSize,
		Mux:             *muxMode,
		LoadAware:       *loadAware,
		LoadSpillFactor: *loadSpill,
		Health: cluster.HealthConfig{
			Interval:      *probeInterval,
			Timeout:       *probeTimeout,
			FailThreshold: *failThreshold,
		},
		Logger: logger,
	})
	if err != nil {
		fatal(err)
	}
	binding := obs.PublishExpvar("cluster", func() any { return router.Stats() })
	defer binding.Unpublish()

	if *watch != "" {
		watchCtx, watchCancel := context.WithCancel(context.Background())
		defer watchCancel()
		go router.WatchMembership(watchCtx, func() (map[string]string, error) {
			return loadMembershipFile(*watch)
		}, *watchInterval)
		logger.Printf("herouter: watching membership file %s every %v", *watch, *watchInterval)
	}

	srv := cluster.NewServer(params, router, logger)
	srv.NodeID = *nodeID
	srv.ReadTimeout = *readTimeout

	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(router.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			logger.Printf("herouter: debug endpoint on http://%s/debug/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Printf("herouter: debug endpoint: %v", err)
			}
		}()
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	logger.Printf("herouter: listening on %s in front of %d backend(s), %d replica(s) per tenant",
		bound, len(backends), *replicas)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGUSR1 {
				dumpStats(logger, router)
				continue
			}
			logger.Printf("herouter: %v — draining (budget %v)", sig, *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.Shutdown(ctx); err != nil {
				logger.Printf("herouter: drain: %v", err)
			}
			cancel()
			return
		}
	}()

	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	router.Close()
	dumpStats(logger, router)
	logger.Printf("herouter: routed %d operations, goodbye", srv.Served())
}

// parseBackends decodes the -backends list: "host:port" entries use the
// address as the ring ID, "id=host:port" entries pin one explicitly.
func parseBackends(list string) ([]cluster.Backend, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("-backends is required (comma-separated host:port or id=host:port)")
	}
	var out []cluster.Backend
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		b := cluster.Backend{ID: entry, Addr: entry}
		if id, addr, ok := strings.Cut(entry, "="); ok {
			b.ID, b.Addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		}
		if b.ID == "" || b.Addr == "" {
			return nil, fmt.Errorf("bad backend entry %q", entry)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated host:port or id=host:port)")
	}
	return out, nil
}

// loadMembershipFile reads a -watch file: -backends syntax, one entry per
// line (blank lines and # comments skipped), returned as id -> addr.
func loadMembershipFile(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	if len(entries) == 0 {
		return map[string]string{}, nil
	}
	backends, err := parseBackends(strings.Join(entries, ","))
	if err != nil {
		return nil, err
	}
	want := make(map[string]string, len(backends))
	for _, b := range backends {
		want[b.ID] = b.Addr
	}
	return want, nil
}

func dumpStats(logger *log.Logger, router *cluster.Router) {
	out, err := json.MarshalIndent(router.Stats(), "", "  ")
	if err != nil {
		logger.Printf("herouter: stats: %v", err)
		return
	}
	fmt.Fprintf(os.Stderr, "herouter cluster stats: %s\n", out)
}

// usageError prints the problem plus usage and exits 2, the conventional
// bad-invocation status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "herouter:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "herouter:", err)
	os.Exit(1)
}
