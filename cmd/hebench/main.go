// Command hebench runs the smoke benchmarks the CI regression gate guards —
// forward NTT at n = 4096, the paper-parameter MulRelin pipeline, and
// serving-engine throughput — and emits a machine-readable report.
//
// Usage:
//
//	hebench -count 5 -json BENCH_current.json    # write a report
//	hebench -count 3                             # print to stdout
//	hebench -sweep 12,13,14,15 -json sweep.json  # ring-degree sweep
//
// Each op is sampled -count times and the report records the median, the
// deterministic simulated-hardware cycles where the op has them, the
// goroutine-pool width it ran at, and — for the zero-allocation hot-path ops —
// the steady-state allocs/op. The report also carries a calibration
// measurement (a fixed scalar loop) so cmd/benchdiff can normalize wall-clock
// comparisons across machines of different speed.
//
// With -sweep the smoke suite is replaced by the parameter sweep: the NTT
// and MulInto hot paths are re-timed at each listed ring degree (log2
// values), producing ops suffixed _n<logN> so the scaling curve can be
// plotted or gated independently of the paper design point.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hebench"
)

func main() {
	count := flag.Int("count", 5, "samples per op; the report records medians")
	jsonPath := flag.String("json", "", "write the report to this file (default: stdout)")
	engineOps := flag.Int("engine-ops", 24, "Mult count per engine-throughput sample")
	engineWorkers := flag.Int("engine-workers", 2, "engine worker-pool size")
	clusterTenants := flag.Int("cluster-tenants", 48, "tenants sharded across the cluster-throughput scenario")
	clusterOps := flag.Int("cluster-ops", 96, "total Mult count per cluster-throughput sample")
	sweep := flag.String("sweep", "", "comma-separated log2 ring degrees (e.g. 12,13,14,15); run the parameter sweep instead of the smoke suite")
	flag.Parse()

	cfg := hebench.SmokeConfig{
		Count:          *count,
		EngineOps:      *engineOps,
		EngineWorkers:  *engineWorkers,
		ClusterTenants: *clusterTenants,
		ClusterOps:     *clusterOps,
	}

	var rep *hebench.Report
	var err error
	if *sweep != "" {
		var logNs []int
		for _, part := range strings.Split(*sweep, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, convErr := strconv.Atoi(part)
			if convErr != nil {
				fmt.Fprintf(os.Stderr, "hebench: bad -sweep entry %q: %v\n", part, convErr)
				os.Exit(2)
			}
			logNs = append(logNs, v)
		}
		rep, err = hebench.RunSweep(cfg, logNs)
	} else {
		rep, err = hebench.RunSmoke(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hebench:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, "hebench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		for _, r := range rep.Results {
			allocs := ""
			if r.AllocsPerOp != nil {
				allocs = fmt.Sprintf("  allocs/op=%.0f", *r.AllocsPerOp)
			}
			fmt.Printf("%-20s %14.0f ns/op %14d sim-cycles  pool=%d%s\n",
				r.Op, r.NsPerOp, r.SimCycles, r.PoolWidth, allocs)
		}
		fmt.Printf("report written to %s (count=%d, calibration %.0f ns)\n",
			*jsonPath, rep.Count, rep.CalibrationNs)
	}
}
