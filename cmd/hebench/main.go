// Command hebench runs the smoke benchmarks the CI regression gate guards —
// forward NTT at n = 4096, the paper-parameter MulRelin pipeline, and
// serving-engine throughput — and emits a machine-readable report.
//
// Usage:
//
//	hebench -count 5 -json BENCH_current.json    # write a report
//	hebench -count 3                             # print to stdout
//
// Each op is sampled -count times and the report records the median, the
// deterministic simulated-hardware cycles where the op has them, and the
// goroutine-pool width it ran at. The report also carries a calibration
// measurement (a fixed scalar loop) so cmd/benchdiff can normalize wall-clock
// comparisons across machines of different speed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hebench"
)

func main() {
	count := flag.Int("count", 5, "samples per op; the report records medians")
	jsonPath := flag.String("json", "", "write the report to this file (default: stdout)")
	engineOps := flag.Int("engine-ops", 24, "Mult count per engine-throughput sample")
	engineWorkers := flag.Int("engine-workers", 2, "engine worker-pool size")
	clusterTenants := flag.Int("cluster-tenants", 48, "tenants sharded across the cluster-throughput scenario")
	clusterOps := flag.Int("cluster-ops", 96, "total Mult count per cluster-throughput sample")
	flag.Parse()

	rep, err := hebench.RunSmoke(hebench.SmokeConfig{
		Count:          *count,
		EngineOps:      *engineOps,
		EngineWorkers:  *engineWorkers,
		ClusterTenants: *clusterTenants,
		ClusterOps:     *clusterOps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hebench:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, "hebench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		for _, r := range rep.Results {
			fmt.Printf("%-20s %14.0f ns/op %14d sim-cycles  pool=%d\n",
				r.Op, r.NsPerOp, r.SimCycles, r.PoolWidth)
		}
		fmt.Printf("report written to %s (count=%d, calibration %.0f ns)\n",
			*jsonPath, rep.Count, rep.CalibrationNs)
	}
}
