package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hebench"
)

func writeReport(t *testing.T, dir, name string, rep *hebench.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func syntheticReport(nttNs, mulNs, engNs float64, mulCycles uint64) *hebench.Report {
	return &hebench.Report{
		Schema:        hebench.ReportSchema,
		Count:         5,
		CalibrationNs: 1e6,
		Results: []hebench.BenchResult{
			{Op: hebench.OpNTTForward, NsPerOp: nttNs, SimCycles: 40000, PoolWidth: 1},
			{Op: hebench.OpMulRelin, NsPerOp: mulNs, SimCycles: mulCycles, PoolWidth: 7},
			{Op: hebench.OpEngineThroughput, NsPerOp: engNs, SimCycles: 900000, PoolWidth: 2},
		},
	}
}

// The acceptance criterion for the gate: a synthetic 20% wall-clock
// regression in one op must exit nonzero at the default 15% threshold.
func TestSyntheticRegressionFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", syntheticReport(100000, 5e6, 2e6, 8e6))
	cur := writeReport(t, dir, "cur.json", syntheticReport(100000, 6e6, 2e6, 8e6)) // mul_relin +20%

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Fatalf("report does not flag the regression:\n%s", &stdout)
	}
	if !strings.Contains(stdout.String(), hebench.OpMulRelin) {
		t.Fatalf("report does not name the regressed op:\n%s", &stdout)
	}
}

func TestIdenticalReportsPassGate(t *testing.T) {
	dir := t.TempDir()
	rep := syntheticReport(100000, 5e6, 2e6, 8e6)
	base := writeReport(t, dir, "base.json", rep)
	cur := writeReport(t, dir, "cur.json", rep)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, &stderr)
	}
}

// A slower machine (larger calibration) must not read as a regression when
// normalization is on, and must when it is off.
func TestCalibrationNormalization(t *testing.T) {
	dir := t.TempDir()
	baseRep := syntheticReport(100000, 5e6, 2e6, 8e6)
	curRep := syntheticReport(130000, 6.5e6, 2.6e6, 8e6) // everything +30% wall...
	curRep.CalibrationNs = 1.3e6                         // ...because the box is 30% slower
	base := writeReport(t, dir, "base.json", baseRep)
	cur := writeReport(t, dir, "cur.json", curRep)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("normalized run: exit code = %d, want 0\nstdout: %s", code, &stdout)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-base", base, "-cur", cur, "-normalize=false"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unnormalized run: exit code = %d, want 1\nstdout: %s", code, &stdout)
	}
}

// Simulated cycles are machine-independent, so a cycle regression fails the
// gate even when wall time is flat.
func TestSimCycleRegressionFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", syntheticReport(100000, 5e6, 2e6, 8e6))
	cur := writeReport(t, dir, "cur.json", syntheticReport(100000, 5e6, 2e6, 10e6)) // +25% cycles

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s", code, &stdout)
	}
	if !strings.Contains(stdout.String(), "simulated cycles") {
		t.Fatalf("regression reason should cite simulated cycles:\n%s", &stdout)
	}
}

// An op vanishing from the current report must fail the gate, not pass by
// omission.
func TestMissingOpFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", syntheticReport(100000, 5e6, 2e6, 8e6))
	curRep := syntheticReport(100000, 5e6, 2e6, 8e6)
	curRep.Results = curRep.Results[:2] // drop engine_throughput
	cur := writeReport(t, dir, "cur.json", curRep)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-base", base, "-cur", cur,
		"-ops", "ntt_forward,mul_relin,engine_throughput"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s", code, &stdout)
	}
}

// withAllocs annotates one op of a synthetic report with a steady-state
// allocation count, the way hebench's warm-loop accounting does.
func withAllocs(rep *hebench.Report, op string, allocs float64) *hebench.Report {
	for i := range rep.Results {
		if rep.Results[i].Op == op {
			rep.Results[i].AllocsPerOp = &allocs
		}
	}
	return rep
}

// The allocation gate is exact-count: a synthetic +N allocs/op regression
// must fail -gate-allocs even though every wall-clock and sim-cycle number
// is identical. The count comparison never touches the calibration ratio,
// so no machine-speed difference can launder a new allocation.
func TestAllocRegressionFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json",
		withAllocs(syntheticReport(100000, 5e6, 2e6, 8e6), hebench.OpMulRelin, 0))
	cur := writeReport(t, dir, "cur.json",
		withAllocs(syntheticReport(100000, 5e6, 2e6, 8e6), hebench.OpMulRelin, 3))

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur, "-gate-allocs"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "allocs/op") {
		t.Fatalf("regression reason should cite allocs/op:\n%s", &stdout)
	}

	// Without -gate-allocs the same reports pass: the count is recorded but
	// not gated.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-base", base, "-cur", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("ungated run: exit code = %d, want 0\nstdout: %s", code, &stdout)
	}
}

// Equal or lower allocation counts pass the gate; only growth fails.
func TestEqualOrLowerAllocsPassGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json",
		withAllocs(syntheticReport(100000, 5e6, 2e6, 8e6), hebench.OpMulRelin, 2))
	for name, cur := range map[string]float64{"equal.json": 2, "lower.json": 0} {
		curPath := writeReport(t, dir, name,
			withAllocs(syntheticReport(100000, 5e6, 2e6, 8e6), hebench.OpMulRelin, cur))
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-base", base, "-cur", curPath, "-gate-allocs"}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit code = %d, want 0\nstdout: %s", name, code, &stdout)
		}
	}
}

// A baseline-recorded allocation count vanishing from the current report
// must fail the gate — the measurement disappearing is not a pass.
func TestMissingAllocsFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json",
		withAllocs(syntheticReport(100000, 5e6, 2e6, 8e6), hebench.OpMulRelin, 0))
	cur := writeReport(t, dir, "cur.json", syntheticReport(100000, 5e6, 2e6, 8e6))

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", base, "-cur", cur, "-gate-allocs"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s", code, &stdout)
	}
	if !strings.Contains(stdout.String(), "missing") {
		t.Fatalf("regression reason should cite the missing measurement:\n%s", &stdout)
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -cur: exit code = %d, want 2", code)
	}
	if code := run([]string{"-base", "/nonexistent.json", "-cur", "/nonexistent.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit code = %d, want 2", code)
	}
}
