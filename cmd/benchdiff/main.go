// Command benchdiff compares two hebench reports and fails when the current
// one regresses past a threshold. It is the CI benchmark gate:
//
//	hebench -count 5 -json BENCH_current.json
//	benchdiff -base BENCH_baseline.json -cur BENCH_current.json
//
// Exit status: 0 when every compared op is within the threshold, 1 on
// regression (or when an op named in -ops is missing from either report),
// 2 on usage or I/O errors.
//
// Wall-clock comparisons are normalized by the reports' calibration ratio
// (disable with -normalize=false); simulated-cycle comparisons never are,
// because cycles are machine-independent — a cycle delta is always a real
// change in the hardware model or schedule.
//
// With -gate-allocs the steady-state allocation counts are gated too, and
// exactly: allocs/op is a machine-independent integer, so the current count
// exceeding the baseline's by even one allocation fails, with no threshold
// slack and no calibration normalization. An op whose baseline records the
// measurement but whose current report omits it also fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/hebench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "BENCH_baseline.json", "baseline report")
	cur := fs.String("cur", "", "current report (required)")
	threshold := fs.Float64("threshold", 15, "regression threshold in percent")
	opsFlag := fs.String("ops", "", "comma-separated ops to gate on (default: all ops present in both reports)")
	normalize := fs.Bool("normalize", true, "scale wall times by the calibration ratio")
	gateAllocs := fs.Bool("gate-allocs", false, "fail when an op's steady-state allocs/op exceeds the baseline count (exact, never normalized)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cur == "" {
		fmt.Fprintln(stderr, "benchdiff: -cur is required")
		fs.Usage()
		return 2
	}

	baseRep, err := hebench.ReadReport(*base)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	curRep, err := hebench.ReadReport(*cur)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	var ops []string
	if *opsFlag != "" {
		for _, op := range strings.Split(*opsFlag, ",") {
			if op = strings.TrimSpace(op); op != "" {
				ops = append(ops, op)
			}
		}
	}
	deltas := hebench.Compare(baseRep, curRep, hebench.CompareOptions{
		Ops:          ops,
		ThresholdPct: *threshold,
		Normalize:    *normalize,
		GateAllocs:   *gateAllocs,
	})
	if len(deltas) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no ops in common between the reports")
		return 2
	}
	if regressed := hebench.RenderDeltas(stdout, deltas); regressed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d op(s) regressed beyond %.0f%%\n", regressed, *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: all ops within %.0f%% of baseline\n", *threshold)
	return 0
}
