// Command heserver runs the cloud service of the paper's Fig. 11: a TCP
// server in front of the simulated Arm+FPGA platform, executing homomorphic
// Add and Mult on encrypted data it can never read.
//
// Usage:
//
//	heserver -addr :7100 -seed 42            # small test parameters
//	heserver -addr :7100 -paper -seed 42     # the paper's n = 4096 set
//
// The key material is derived deterministically from -seed so that a client
// started with the same seed (see examples/cloud) holds the matching keys;
// in a real deployment the client would upload its public and relin keys
// instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/sampler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	paper := flag.Bool("paper", false, "use the paper parameter set (n = 4096) instead of the small test set")
	tmod := flag.Uint64("t", 65537, "plaintext modulus")
	seed := flag.Uint64("seed", 42, "deterministic key seed shared with the client")
	coprocs := flag.Int("coprocs", 2, "number of simulated co-processors")
	flag.Parse()

	cfg := fv.TestConfig(*tmod)
	if *paper {
		cfg = fv.PaperConfig(*tmod)
	}
	params, err := fv.NewParams(cfg)
	if err != nil {
		fatal(err)
	}
	prng := sampler.NewPRNG(*seed)
	kg := fv.NewKeyGenerator(params, prng)
	sk, _, rk := kg.GenKeys()

	accel, err := core.New(params, hwsim.VariantHPS, *coprocs)
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv := cloud.NewServer(params, accel, rk, logger)
	// Install rotation keys for the common Galois elements (clients would
	// upload these alongside the relin key). The secret key itself never
	// leaves this key-derivation step; the server keeps only key-switching
	// material.
	for _, g := range []int{3, 9, 2*params.N() - 1} {
		srv.SetGaloisKey(kg.GenGaloisKey(sk, g))
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	logger.Printf("heserver: listening on %s (n=%d, log q=%d, %d co-processors, seed %d)",
		bound, params.N(), params.LogQ(), *coprocs, *seed)
	if err := srv.Serve(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heserver:", err)
	os.Exit(1)
}
