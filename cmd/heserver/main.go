// Command heserver runs the cloud service of the paper's Fig. 11: a TCP
// server in front of the serving engine, which batches homomorphic Add,
// Mult, and Rotate requests onto a pool of simulated Arm+FPGA co-processor
// workers.
//
// Usage:
//
//	heserver -addr :7100 -seed 42              # small test parameters
//	heserver -addr :7100 -paper -seed 42       # the paper's n = 4096 set
//	heserver -workers 4 -queue-depth 256       # bigger pool, deeper queue
//
// The key material is derived deterministically from -seed so that a client
// started with the same seed (see examples/cloud) holds the matching keys;
// in a real deployment the client would upload its public and relin keys
// instead.
//
// Observability: SIGUSR1 dumps the engine's stats snapshot (counters,
// latency histograms including queue wait / batch assembly / service time,
// per-worker simulated cycles, and the goroutine pool's task/steal/width
// accounting) as JSON to stderr; the same dump is emitted on graceful
// shutdown (SIGINT/SIGTERM). The snapshot is also published under expvar
// name "engine". With -debug-addr set, an HTTP debug endpoint serves
//
//	/debug/vars        expvar JSON (includes the engine snapshot)
//	/debug/stats       the engine snapshot alone, pretty-printed
//	/debug/pprof/...   net/http/pprof profiles (CPU, heap, goroutine, ...)
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckks"
	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/fv"
	"repro/internal/hwsim"
	"repro/internal/sampler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	paper := flag.Bool("paper", false, "use the paper parameter set (n = 4096) instead of the small test set")
	tmod := flag.Uint64("t", 65537, "plaintext modulus")
	seed := flag.Uint64("seed", 42, "deterministic key seed shared with the client")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size, one simulated co-processor each (the paper's platform is 2)")
	queueDepth := flag.Int("queue-depth", 64, "admission queue bound; a full queue rejects with an overload error")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	maxBatch := flag.Int("batch", 8, "max compatible ops dispatched to a worker as one batch")
	keyCache := flag.Int("keycache", 8, "per-worker evaluation-key cache slots (LRU)")
	tenants := flag.String("tenants", "", "comma-separated extra tenant namespaces to register the seed-derived keys under (cluster deployments replicate keys to every node this way)")
	nodeID := flag.String("node-id", "", "node name advertised in info replies and used as the cluster ring identity (default: the bound address)")
	readTimeout := flag.Duration("read-timeout", cloud.DefaultReadTimeout, "per-request read deadline on client connections")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight work")
	debugAddr := flag.String("debug-addr", "", "listen address for the HTTP debug endpoint (expvar + pprof); empty disables it")
	integrity := flag.Bool("integrity", false, "verify co-processor results with Freivalds fingerprints; a mismatch fails the op with a retryable integrity error instead of returning corrupted data")
	integritySeed := flag.Int64("integrity-seed", 1, "seed for the integrity fingerprint weights")
	pipelined := flag.Bool("pipelined", false, "stream multi-op Mul batches through the double-buffered DMA/compute pipeline (operand DMA of the next op overlaps the current op's compute)")
	ckksServe := flag.Bool("ckks", false, "additionally serve the CKKS approximate-arithmetic commands (CmdCKKSAdd/Mul/Rotate); CKKS keys are derived from -seed on an independent PRNG stream, with rotation keys installed for slot shifts 1, 2, 4, and 8")
	noiseGuard := flag.Bool("noise-guard", false, "reject ops whose client-declared noise budget the noise model predicts would be exhausted")
	minNoiseBudget := flag.Float64("min-noise-budget", 1.0, "bits of predicted post-op noise budget below which the noise guard rejects (with -noise-guard)")
	tenantQuota := flag.Int("tenant-quota", 0, "max in-flight ops per tenant on this node; excess is rejected with a retryable quota error (0 = unlimited)")
	tenantWeights := flag.String("tenant-weights", "", "comma-separated tenant=weight pairs biasing weighted-fair batch emission (default weight 1)")
	flag.Parse()

	// Validate before building anything: a nonsensical flag is a usage
	// error (exit 2), not a crash or a silently misbehaving server.
	switch {
	case *workers <= 0:
		usageError(fmt.Errorf("-workers must be positive, got %d", *workers))
	case *queueDepth <= 0:
		usageError(fmt.Errorf("-queue-depth must be positive, got %d", *queueDepth))
	case *maxBatch <= 0:
		usageError(fmt.Errorf("-batch must be positive, got %d", *maxBatch))
	case *keyCache <= 0:
		usageError(fmt.Errorf("-keycache must be positive, got %d", *keyCache))
	case *deadline < 0:
		usageError(fmt.Errorf("-deadline must not be negative, got %v", *deadline))
	case *deadline > 0 && *deadline < time.Millisecond:
		usageError(fmt.Errorf("-deadline %v is below 1ms; every request would expire before execution", *deadline))
	case *readTimeout <= 0:
		usageError(fmt.Errorf("-read-timeout must be positive, got %v", *readTimeout))
	case *drainTimeout <= 0:
		usageError(fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout))
	case *minNoiseBudget <= 0:
		usageError(fmt.Errorf("-min-noise-budget must be positive, got %v", *minNoiseBudget))
	case *tenantQuota < 0:
		usageError(fmt.Errorf("-tenant-quota must not be negative, got %d", *tenantQuota))
	}
	for _, tn := range tenantList(*tenants) {
		if len(tn) > cloud.MaxTenantLen {
			usageError(fmt.Errorf("-tenants entry %q longer than %d bytes", tn, cloud.MaxTenantLen))
		}
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		usageError(err)
	}

	cfg := fv.TestConfig(*tmod)
	if *paper {
		cfg = fv.PaperConfig(*tmod)
	}
	params, err := fv.NewParams(cfg)
	if err != nil {
		fatal(err)
	}
	// Account pool fan-out (task counts, steals, width utilization); the
	// engine folds the snapshot into Stats().
	params.Pool.EnableMetrics()
	prng := sampler.NewPRNG(*seed)
	kg := fv.NewKeyGenerator(params, prng)
	sk, _, rk := kg.GenKeys()

	// The CKKS lane rides alongside BFV on the same engine: its own prime
	// chain sized to match the BFV ring, keys derived from the same -seed on
	// an independent PRNG stream (the client repeats the derivation).
	var cparams *ckks.Params
	var crk *ckks.RelinKey
	var cgalois []*ckks.GaloisKey
	if *ckksServe {
		ccfg := ckks.TestConfig()
		if *paper {
			ccfg = ckks.PaperConfig()
		}
		cparams, err = ckks.NewParams(ccfg)
		if err != nil {
			fatal(err)
		}
		ckg := ckks.NewKeyGenerator(cparams, sampler.NewPRNG(*seed))
		csk, _, rk := ckg.GenKeys()
		crk = rk
		for r := 1; r <= 8; r *= 2 {
			cgalois = append(cgalois, ckg.GenGaloisKey(csk, cparams.GaloisElementForRotation(r)))
		}
	}

	eng, err := engine.New(engine.Config{
		Params:             params,
		CKKSParams:         cparams,
		Variant:            hwsim.VariantHPS,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		Deadline:           *deadline,
		MaxBatch:           *maxBatch,
		KeyCacheSlots:      *keyCache,
		ExpvarName:         "engine",
		Pipelined:          *pipelined,
		IntegrityChecks:    *integrity,
		IntegritySeed:      *integritySeed,
		NoiseGuard:         *noiseGuard,
		MinNoiseBudgetBits: *minNoiseBudget,
		TenantQuota:        *tenantQuota,
		TenantWeights:      weights,
	})
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	// Register the seed-derived keys under the default tenant and every
	// -tenants namespace: in a cluster, each node holds every tenant's keys
	// (full replication), so a tenant's requests can fail over to any ring
	// replica. The secret key itself never leaves this key-derivation step;
	// the engine keeps only key-switching material.
	galois := make([]*fv.GaloisKey, 0, 3)
	for _, g := range []int{3, 9, 2*params.N() - 1} {
		galois = append(galois, kg.GenGaloisKey(sk, g))
	}
	for _, tenant := range append([]string{cloud.DefaultTenant}, tenantList(*tenants)...) {
		eng.SetRelinKey(tenant, rk)
		for _, gk := range galois {
			eng.SetGaloisKey(tenant, gk)
		}
		if crk != nil {
			eng.SetCKKSRelinKey(tenant, crk)
			for _, gk := range cgalois {
				eng.SetCKKSGaloisKey(tenant, gk)
			}
		}
	}

	srv := cloud.NewServer(params, eng, logger)
	srv.CKKSParams = cparams
	srv.ReadTimeout = *readTimeout
	srv.NodeID = *nodeID
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(eng.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Printf("heserver: debug endpoint on http://%s/debug/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Printf("heserver: debug endpoint: %v", err)
			}
		}()
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if srv.NodeID == "" {
		srv.NodeID = bound
	}
	logger.Printf("heserver: %s listening on %s (n=%d, log q=%d, %d workers, queue %d, seed %d, ckks %v, tenants %v)",
		srv.NodeID, bound, params.N(), params.LogQ(), eng.Workers(), *queueDepth, *seed, cparams != nil, eng.Tenants())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGUSR1 {
				dumpStats(logger, eng)
				continue
			}
			logger.Printf("heserver: %v — draining (budget %v)", sig, *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.Shutdown(ctx); err != nil {
				logger.Printf("heserver: connection drain: %v", err)
			}
			if err := eng.Shutdown(ctx); err != nil {
				logger.Printf("heserver: engine drain: %v", err)
			}
			cancel()
			return
		}
	}()

	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	dumpStats(logger, eng)
	logger.Printf("heserver: served %d operations, goodbye", srv.Served())
}

func dumpStats(logger *log.Logger, eng *engine.Engine) {
	out, err := json.MarshalIndent(eng.Stats(), "", "  ")
	if err != nil {
		logger.Printf("heserver: stats: %v", err)
		return
	}
	fmt.Fprintf(os.Stderr, "heserver engine stats: %s\n", out)
}

// parseWeights decodes the -tenant-weights flag ("a=3,b=1") into the
// engine's fair-emission weight map; nil when the flag is empty.
func parseWeights(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%d", &w); !ok || err != nil || name == "" || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights entry %q: want tenant=positive-weight", entry)
		}
		out[name] = w
	}
	return out, nil
}

// tenantList splits the -tenants flag, dropping empties.
func tenantList(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// usageError prints the problem plus usage and exits 2, the conventional
// bad-invocation status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "heserver:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heserver:", err)
	os.Exit(1)
}
