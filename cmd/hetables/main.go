// Command hetables regenerates every table of the paper's evaluation
// section from the simulator and prints paper-vs-measured rows.
//
// Usage:
//
//	hetables            # all tables, paper parameter set (n = 4096)
//	hetables -table 1   # a single table: 1,2,3,4,5,nohps,compare,ablations
//	hetables -small     # quick run with the small test parameter set
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fv"
	"repro/internal/hebench"
	"repro/internal/hwsim"
)

func main() {
	table := flag.String("table", "", "table to print: 1,2,3,4,5,nohps,compare,ablations (default all)")
	small := flag.Bool("small", false, "use the small test parameter set instead of the paper set")
	program := flag.Bool("program", false, "print the Mult instruction listing instead of tables")
	fig3 := flag.Bool("fig3", false, "print the Fig. 3 memory access pattern instead of tables")
	table3x := flag.Bool("table3x", false, "print the extended Table III (double-buffered stream) instead of tables")
	flag.Parse()

	if *fig3 {
		if err := hwsim.RenderFig3(os.Stdout, 4096); err != nil {
			fmt.Fprintln(os.Stderr, "hetables:", err)
			os.Exit(1)
		}
		return
	}

	if *table3x {
		// Paper-set Mult stream profile: 4 operand polynomials in, 2 result
		// polynomials out, Table I-scale compute per op.
		d := hwsim.DMA{Timing: hwsim.DefaultTiming()}
		polyB := hwsim.PolyBytes(4096, 6)
		err := hwsim.RenderTableIIIPipelined(os.Stdout, d, 4*polyB, 2*polyB, 180000, 8, []int{0, 16384, 1024})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetables:", err)
			os.Exit(1)
		}
		return
	}

	var suite *hebench.Suite
	var err error
	if *small {
		suite, err = hebench.NewSuite(fv.TestConfig(2))
	} else {
		suite, err = hebench.PaperSuite()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetables:", err)
		os.Exit(1)
	}

	if *program {
		listing, err := suite.MulProgramListing()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetables:", err)
			os.Exit(1)
		}
		fmt.Print(listing)
		return
	}

	if *table == "" {
		if err := suite.RenderAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hetables:", err)
			os.Exit(1)
		}
		return
	}

	var t hebench.Table
	switch *table {
	case "1":
		t, err = suite.TableI()
	case "2":
		t, err = suite.TableII()
	case "3":
		t = suite.TableIII()
	case "4":
		t = suite.TableIV()
	case "5":
		t = suite.TableV()
	case "nohps":
		t, err = suite.TableNoHPS()
	case "compare":
		t, err = suite.Comparison()
	case "ablations":
		t, err = suite.Ablations()
	default:
		fmt.Fprintf(os.Stderr, "hetables: unknown table %q\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetables:", err)
		os.Exit(1)
	}
	t.Render(os.Stdout)
}
