GO ?= go
BENCH_COUNT ?= 5

.PHONY: build test race bench-baseline bench-check lint fuzz-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refresh the checked-in benchmark baseline the CI regression gate compares
# against. Run on a quiet machine and commit the result together with the
# change that legitimately moved the numbers.
bench-baseline:
	$(GO) run ./cmd/hebench -count $(BENCH_COUNT) -json BENCH_baseline.json

# The CI gate, runnable locally: measure now and diff against the baseline.
bench-check:
	$(GO) run ./cmd/hebench -count $(BENCH_COUNT) -json BENCH_current.json
	$(GO) run ./cmd/benchdiff -base BENCH_baseline.json -cur BENCH_current.json \
		-ops ntt_forward,mul_relin,engine_throughput,cluster_throughput_1,cluster_throughput_2,cluster_throughput_4,program_encsearch,sched_overlap,mux_throughput

lint:
	golangci-lint run ./...

# Five-iteration fuzz smoke over the differential fv<->hwsim targets, the
# hardened wire-protocol decoders, and the compiled-program codec.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDiffTransform -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDiffPointwise -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDiffMulRelin -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDecodeRequest -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeResponse -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeMuxFrame -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeProgram -fuzztime=20x ./internal/program

# The chaos suite: pinned-seed randomized fault schedules (BRAM flips, DMA
# garbles, RPAU kills/stalls, limb corruption, dropped/garbled wire frames)
# through real encrypt -> evaluate -> decrypt workloads, under the race
# detector. Pinned seeds make a failure replayable.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faults
