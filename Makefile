GO ?= go
BENCH_COUNT ?= 5

.PHONY: build test race bench-baseline bench-check bench-allocs bench-sweep lint fuzz-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refresh the checked-in benchmark baseline the CI regression gate compares
# against. Run on a quiet machine and commit the result together with the
# change that legitimately moved the numbers.
bench-baseline:
	$(GO) run ./cmd/hebench -count $(BENCH_COUNT) -json BENCH_baseline.json

# The CI gate, runnable locally: measure now and diff against the baseline.
# BENCH_current.json is gitignored scratch output. -gate-allocs makes the
# steady-state allocs/op counts part of the wall: they compare exactly, with
# no threshold slack and no calibration normalization.
bench-check:
	$(GO) run ./cmd/hebench -count $(BENCH_COUNT) -json BENCH_current.json
	$(GO) run ./cmd/benchdiff -base BENCH_baseline.json -cur BENCH_current.json -gate-allocs \
		-ops ntt_forward,mul_relin,engine_throughput,cluster_throughput_1,cluster_throughput_2,cluster_throughput_4,cluster_rolling_restart,program_encsearch,sched_overlap,mux_throughput,ckks_mul_rescale

# The zero-allocation wall on its own: the -benchmem hot-path benchmarks
# print B/op and allocs/op, then benchdiff enforces the exact steady-state
# counts against the baseline. One new allocation per warm Mul or NTT fails.
bench-allocs:
	$(GO) test -run=NONE -bench 'MulRelin|NTT' -benchtime 10x -benchmem . ./internal/poly
	$(GO) run ./cmd/hebench -count 3 -json BENCH_current.json
	$(GO) run ./cmd/benchdiff -base BENCH_baseline.json -cur BENCH_current.json -gate-allocs \
		-ops ntt_forward,mul_relin,ckks_mul_rescale

# Ring-degree sweep of the gated hot paths (forward NTT and MulInto at
# n = 2^12..2^15, paper prime shape throughout). Writes gitignored scratch
# output; CI uploads it as an artifact on main so scaling curves accumulate
# per merge without living in the tree.
bench-sweep:
	$(GO) run ./cmd/hebench -count $(BENCH_COUNT) -sweep 12,13,14,15 -json BENCH_sweep.json

lint:
	golangci-lint run ./...

# Five-iteration fuzz smoke over the differential fv<->hwsim targets, the
# hardened wire-protocol decoders, the compiled-program codec, and the CKKS
# key container and encoder.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDiffTransform -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDiffPointwise -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDiffMulRelin -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDiffCKKSMulRescale -fuzztime=5x ./internal/difftest
	$(GO) test -run=NONE -fuzz=FuzzDecodeRequest -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeResponse -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeMuxFrame -fuzztime=20x ./internal/cloud
	$(GO) test -run=NONE -fuzz=FuzzDecodeProgram -fuzztime=20x ./internal/program
	$(GO) test -run=NONE -fuzz=FuzzDecodeCKKSKeys -fuzztime=20x ./internal/ckks
	$(GO) test -run=NONE -fuzz=FuzzEncoderRoundTrip -fuzztime=20x ./internal/ckks

# The chaos suite: pinned-seed randomized fault schedules (BRAM flips, DMA
# garbles, RPAU kills/stalls, limb corruption — including during the CKKS
# Rescale — and dropped/garbled wire frames) through real encrypt ->
# evaluate -> decrypt workloads, under the race detector. Pinned seeds make
# a failure replayable.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faults
